//===- tests/EquivalenceTest.cpp - Generic-engine equivalence proof -------===//
//
// The hierarchy-generic unification claims that nestmodel's fixed
// 3-level analysis, evaluation and mapper search are *bit-for-bit* the
// generic L-level engine instantiated at Hierarchy::classic3Level. This
// suite holds the proof: the pre-unification fixed-depth implementations
// are embedded verbatim below (namespace legacyref) and diffed against
// the wrappers on the paper's workloads — every access count, every
// double of every EvalResult, and entire mapper trajectories (same RNG
// streams, same trial counts, same winner) at every thread count.
//
// If a change to the generic engine breaks any of these, it changed the
// semantics of the classic machine, not just generalized them.
//
//===----------------------------------------------------------------------===//

#include "nestmodel/Evaluator.h"
#include "nestmodel/Mapper.h"
#include "support/MathUtil.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "thistle/Optimizer.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

using namespace thistle;

// The seed (pre-unification) fixed-depth implementations, kept verbatim
// as the reference the generic engine must reproduce exactly.
namespace legacyref {

struct LevelWalk {
  std::int64_t Multiplier = 1;
  std::optional<unsigned> StreamIter;
  std::int64_t StreamTrip = 1;
};

LevelWalk walkTemporalLevel(const Tensor &T, const std::vector<unsigned> &Perm,
                            const std::vector<std::int64_t> &Trips) {
  LevelWalk Walk;
  bool CanHoist = true;
  for (std::size_t Pos = Perm.size(); Pos > 0; --Pos) {
    unsigned It = Perm[Pos - 1];
    std::int64_t Trip = Trips[It];
    if (Trip == 1)
      continue;
    if (CanHoist) {
      if (T.usesIter(It)) {
        CanHoist = false;
        Walk.StreamIter = It;
        Walk.StreamTrip = Trip;
      }
    } else {
      Walk.Multiplier *= Trip;
    }
  }
  return Walk;
}

std::int64_t unionFootprintWords(const Tensor &T,
                                 const std::vector<std::int64_t> &Extents,
                                 const LevelWalk &Walk) {
  std::int64_t Words = 1;
  for (const DimRef &D : T.Dims) {
    std::int64_t DimExtent = D.extentFor(Extents);
    if (Walk.StreamIter && D.uses(*Walk.StreamIter)) {
      std::int64_t Stride = 0;
      for (const DimRef::Term &Term : D.Terms)
        if (Term.Iter == *Walk.StreamIter)
          Stride = Term.Stride;
      std::int64_t Shift = Stride * Extents[*Walk.StreamIter];
      DimExtent += (Walk.StreamTrip - 1) * std::min(DimExtent, Shift);
    }
    Words *= DimExtent;
  }
  return Words;
}

NestProfile analyzeNest(const Problem &Prob, const Mapping &Map) {
  const unsigned NumIters = Prob.numIterators();

  NestProfile Profile;
  Profile.PerTensor.resize(Prob.tensors().size());
  Profile.PEsUsed = Map.numPEsUsed();

  std::vector<std::int64_t> DramTrips(NumIters), PeTrips(NumIters);
  for (unsigned I = 0; I < NumIters; ++I) {
    DramTrips[I] = Map.factor(I, TileLevel::DramTemporal);
    PeTrips[I] = Map.factor(I, TileLevel::PeTemporal);
  }

  const std::vector<std::int64_t> RegExt = Map.registerTileExtents();
  const std::vector<std::int64_t> SramExt = Map.sramTileExtents();

  for (std::size_t TI = 0; TI < Prob.tensors().size(); ++TI) {
    const Tensor &T = Prob.tensors()[TI];
    TensorVolumes &V = Profile.PerTensor[TI];

    {
      LevelWalk Walk = walkTemporalLevel(T, Map.DramPerm, DramTrips);
      std::int64_t Volume =
          Walk.Multiplier * unionFootprintWords(T, SramExt, Walk);
      V.DramToSram = Volume;
      V.SramToDram = T.ReadWrite ? Volume : 0;
    }

    {
      LevelWalk Walk = walkTemporalLevel(T, Map.PePerm, PeTrips);
      std::int64_t M = Walk.Multiplier;
      for (unsigned I = 0; I < NumIters; ++I) {
        if (T.usesIter(I))
          M *= Map.factor(I, TileLevel::Spatial);
        M *= DramTrips[I];
      }
      std::int64_t Volume = M * unionFootprintWords(T, RegExt, Walk);
      V.SramToReg = Volume;
      V.RegToSram = T.ReadWrite ? Volume : 0;
    }

    Profile.RegTileWords += T.footprintWords(RegExt);
    Profile.SramTileWords += T.footprintWords(SramExt);
  }
  return Profile;
}

EvalResult evaluateMapping(const Problem &Prob, const Mapping &Map,
                           const ArchConfig &Arch,
                           const EnergyModel &Energy) {
  EvalResult Result;
  Result.Profile = legacyref::analyzeNest(Prob, Map);
  const NestProfile &P = Result.Profile;

  Result.Legal = true;
  std::ostringstream Why;
  if (P.RegTileWords > Arch.RegWordsPerPE) {
    Result.Legal = false;
    Why << "register tile " << P.RegTileWords << " words > capacity "
        << Arch.RegWordsPerPE << "; ";
  }
  if (P.SramTileWords > Arch.SramWords) {
    Result.Legal = false;
    Why << "SRAM tile " << P.SramTileWords << " words > capacity "
        << Arch.SramWords << "; ";
  }
  if (P.PEsUsed > Arch.NumPEs) {
    Result.Legal = false;
    Why << "uses " << P.PEsUsed << " PEs > available " << Arch.NumPEs << "; ";
  }
  Result.IllegalReason = Why.str();

  const double Nops = static_cast<double>(Prob.numOps());
  const double DvDram = static_cast<double>(P.dramTraffic());
  const double DvSramReg = static_cast<double>(P.sramRegTraffic());

  const double EpsR =
      Energy.regAccessPj(static_cast<double>(Arch.RegWordsPerPE));
  const double EpsS = Energy.sramAccessPj(static_cast<double>(Arch.SramWords));
  const double EpsD = Energy.dramAccessPj();
  Result.MacEnergyPj = (4.0 * EpsR + Energy.macPj()) * Nops;
  Result.RegEnergyPj = EpsR * DvSramReg;
  Result.SramEnergyPj = EpsS * (DvSramReg + DvDram);
  Result.DramEnergyPj = EpsD * DvDram;
  Result.EnergyPj = Result.MacEnergyPj + Result.RegEnergyPj +
                    Result.SramEnergyPj + Result.DramEnergyPj;
  Result.EnergyPerMacPj = Result.EnergyPj / Nops;

  Result.ComputeCycles = Nops / static_cast<double>(P.PEsUsed);
  Result.DramCycles = DvDram / Arch.DramBandwidth;
  Result.SramCycles = (DvSramReg + DvDram) / Arch.SramBandwidth;
  Result.Cycles = std::max(
      {Result.ComputeCycles, Result.DramCycles, Result.SramCycles, 1.0});
  Result.MacIpc = Nops / Result.Cycles;
  Result.EdpPjCycles = Result.EnergyPj * Result.Cycles;
  return Result;
}

std::uint64_t mix64(std::uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

std::uint64_t slotSeed(std::uint64_t Seed, unsigned Round, unsigned Slot) {
  return Seed ^ mix64((static_cast<std::uint64_t>(Round) << 32) |
                      (static_cast<std::uint64_t>(Slot) + 1));
}

Mapping sampleMapping(const Problem &Prob, const ArchConfig &Arch,
                      const DivisorTable &Divs, Rng &R) {
  Mapping Map;
  const unsigned NumIters = Prob.numIterators();
  Map.Factors.resize(NumIters);

  std::int64_t SpatialBudget = Arch.NumPEs;
  std::vector<unsigned> Order(NumIters);
  std::iota(Order.begin(), Order.end(), 0u);
  R.shuffle(Order);

  for (unsigned I : Order) {
    std::int64_t Extent = Prob.iterators()[I].Extent;
    std::int64_t RegF = R.pick(Divs.of(Extent));
    std::int64_t Rest = Extent / RegF;
    std::vector<std::int64_t> SpatialChoices;
    for (std::int64_t D : Divs.of(Rest))
      if (D <= SpatialBudget)
        SpatialChoices.push_back(D);
    std::int64_t SpatF = R.pick(SpatialChoices);
    SpatialBudget /= SpatF;
    Rest /= SpatF;
    std::int64_t PeF = R.pick(Divs.of(Rest));
    std::int64_t DramF = Rest / PeF;

    Map.factor(I, TileLevel::Register) = RegF;
    Map.factor(I, TileLevel::Spatial) = SpatF;
    Map.factor(I, TileLevel::PeTemporal) = PeF;
    Map.factor(I, TileLevel::DramTemporal) = DramF;
  }

  Map.DramPerm.resize(NumIters);
  std::iota(Map.DramPerm.begin(), Map.DramPerm.end(), 0u);
  R.shuffle(Map.DramPerm);
  Map.PePerm = Map.DramPerm;
  R.shuffle(Map.PePerm);
  return Map;
}

std::int64_t smallestPrimeFactor(std::int64_t N) {
  for (std::int64_t P = 2; P * P <= N; ++P)
    if (N % P == 0)
      return P;
  return N;
}

bool tryMutateOnce(Mapping &Map, Rng &R) {
  const unsigned NumIters = Map.Factors.size();
  if (R.nextDouble() < 0.5) {
    unsigned I = R.nextIndex(NumIters);
    unsigned From = R.nextIndex(NumTileLevels);
    unsigned To = R.nextIndex(NumTileLevels);
    if (From == To || Map.Factors[I][From] <= 1)
      return false;
    std::int64_t P = smallestPrimeFactor(Map.Factors[I][From]);
    Map.Factors[I][From] /= P;
    Map.Factors[I][To] *= P;
    return true;
  }
  std::vector<unsigned> &Perm = R.nextDouble() < 0.5 ? Map.DramPerm
                                                     : Map.PePerm;
  if (Perm.size() < 2)
    return false;
  std::size_t A = R.nextIndex(Perm.size());
  std::size_t B = R.nextIndex(Perm.size());
  if (A == B)
    return false;
  std::swap(Perm[A], Perm[B]);
  return true;
}

bool mutateMapping(Mapping &Map, Rng &R) {
  for (int Attempt = 0; Attempt < 8; ++Attempt)
    if (tryMutateOnce(Map, R))
      return true;
  return false;
}

struct SlotOutcome {
  bool HasEval = false;
  Mapping Candidate;
  EvalResult Eval;
  double Obj = 0.0;
  double AcceptDraw = 0.0;
};

double objectiveValue(const EvalResult &Eval, SearchObjective Objective) {
  switch (Objective) {
  case SearchObjective::Energy:
    return Eval.EnergyPj;
  case SearchObjective::Delay:
    return Eval.Cycles;
  case SearchObjective::EnergyDelayProduct:
    return Eval.EdpPjCycles;
  }
  return 0.0;
}

MapperResult searchMappings(const Problem &Prob, const ArchConfig &Arch,
                            const EnergyModel &Energy,
                            const MapperOptions &Options) {
  MapperResult Result;
  double BestObj = 0.0;
  unsigned SinceImprovement = 0;

  Mapping Current;
  double CurrentObj = 0.0;
  bool HaveCurrent = false;
  double Temperature = 0.0;

  DivisorTable Divs;
  for (const Iterator &It : Prob.iterators())
    Divs.populate(It.Extent);

  auto runSlot = [&](SlotOutcome &Out, unsigned Round, unsigned Slot) {
    Rng R(slotSeed(Options.Seed, Round, Slot));
    Mapping Candidate;
    bool Mutated = false;
    switch (Options.Strategy) {
    case MapperStrategy::RandomSampling:
      Candidate = sampleMapping(Prob, Arch, Divs, R);
      break;
    case MapperStrategy::HillClimb:
      if (Result.Found && R.nextDouble() < 0.5) {
        Candidate = Result.Best;
        Mutated = true;
      } else {
        Candidate = sampleMapping(Prob, Arch, Divs, R);
      }
      break;
    case MapperStrategy::Anneal:
      if (HaveCurrent) {
        Candidate = Current;
        Mutated = true;
      } else {
        Candidate = sampleMapping(Prob, Arch, Divs, R);
      }
      break;
    }
    if (Mutated && !mutateMapping(Candidate, R))
      return;
    if (Mutated && !Candidate.validate(Prob).empty())
      return;

    Out.Eval = legacyref::evaluateMapping(Prob, Candidate, Arch, Energy);
    Out.Obj = Out.Eval.Legal
                  ? legacyref::objectiveValue(Out.Eval, Options.Objective)
                  : 0.0;
    Out.AcceptDraw = R.nextDouble();
    Out.Candidate = std::move(Candidate);
    Out.HasEval = true;
  };

  ThreadPool Pool(Options.Threads);
  const unsigned RoundSize = std::max(1u, Options.TrialsPerRound);
  std::vector<SlotOutcome> Slots;

  unsigned SlotsIssued = 0;
  bool Stop = false;
  for (unsigned Round = 0; !Stop && SlotsIssued < Options.MaxTrials;
       ++Round) {
    const unsigned Batch =
        std::min(RoundSize, Options.MaxTrials - SlotsIssued);
    Slots.assign(Batch, SlotOutcome());
    parallelFor(Pool, Batch, [&](std::size_t Slot, unsigned) {
      runSlot(Slots[Slot], Round, static_cast<unsigned>(Slot));
    });
    SlotsIssued += Batch;

    for (unsigned Slot = 0; Slot < Batch && !Stop; ++Slot) {
      SlotOutcome &Out = Slots[Slot];
      if (!Out.HasEval)
        continue;
      ++Result.Trials;
      if (Options.Strategy == MapperStrategy::Anneal)
        Temperature *= Options.AnnealCooling;
      if (!Out.Eval.Legal) {
        ++SinceImprovement;
        if (SinceImprovement >= Options.VictoryCondition && Result.Found)
          Stop = true;
        continue;
      }
      ++Result.LegalTrials;

      if (Options.Strategy == MapperStrategy::Anneal) {
        if (!HaveCurrent) {
          Current = Out.Candidate;
          CurrentObj = Out.Obj;
          HaveCurrent = true;
          Temperature = Options.AnnealInitialTemp * Out.Obj;
        } else if (Out.Obj <= CurrentObj ||
                   (Temperature > 0.0 &&
                    Out.AcceptDraw <
                        std::exp((CurrentObj - Out.Obj) / Temperature))) {
          Current = Out.Candidate;
          CurrentObj = Out.Obj;
        }
      }

      if (!Result.Found || Out.Obj < BestObj) {
        Result.Found = true;
        Result.Best = std::move(Out.Candidate);
        Result.BestEval = std::move(Out.Eval);
        BestObj = Out.Obj;
        SinceImprovement = 0;
      } else if (++SinceImprovement >= Options.VictoryCondition) {
        Stop = true;
      }
    }
  }
  return Result;
}

} // namespace legacyref

namespace {

/// The tier-1 workload sample: the paper's representative shapes kept
/// small enough for thousands of analytical evaluations.
std::vector<Problem> equivalenceWorkloads() {
  std::vector<Problem> Probs;
  {
    ConvLayer L;
    L.K = 16;
    L.C = 8;
    L.Hin = 14;
    L.Win = 14;
    L.R = 3;
    L.S = 3;
    Probs.push_back(makeConvProblem(L));
  }
  {
    ConvLayer L;
    L.K = 8;
    L.C = 16;
    L.Hin = 12;
    L.Win = 12;
    L.R = 3;
    L.S = 3;
    L.StrideX = L.StrideY = 2;
    Probs.push_back(makeConvProblem(L));
  }
  Probs.push_back(makeMatmulProblem(16, 16, 16));
  return Probs;
}

void expectSameProfile(const NestProfile &A, const NestProfile &B) {
  ASSERT_EQ(A.PerTensor.size(), B.PerTensor.size());
  for (std::size_t TI = 0; TI < A.PerTensor.size(); ++TI) {
    EXPECT_EQ(A.PerTensor[TI].DramToSram, B.PerTensor[TI].DramToSram);
    EXPECT_EQ(A.PerTensor[TI].SramToDram, B.PerTensor[TI].SramToDram);
    EXPECT_EQ(A.PerTensor[TI].SramToReg, B.PerTensor[TI].SramToReg);
    EXPECT_EQ(A.PerTensor[TI].RegToSram, B.PerTensor[TI].RegToSram);
  }
  EXPECT_EQ(A.RegTileWords, B.RegTileWords);
  EXPECT_EQ(A.SramTileWords, B.SramTileWords);
  EXPECT_EQ(A.PEsUsed, B.PEsUsed);
}

/// Bit-for-bit: every double compared with exact equality.
void expectSameEval(const EvalResult &A, const EvalResult &B) {
  EXPECT_EQ(A.Legal, B.Legal);
  EXPECT_EQ(A.IllegalReason, B.IllegalReason);
  EXPECT_EQ(A.EnergyPj, B.EnergyPj);
  EXPECT_EQ(A.EnergyPerMacPj, B.EnergyPerMacPj);
  EXPECT_EQ(A.MacEnergyPj, B.MacEnergyPj);
  EXPECT_EQ(A.RegEnergyPj, B.RegEnergyPj);
  EXPECT_EQ(A.SramEnergyPj, B.SramEnergyPj);
  EXPECT_EQ(A.DramEnergyPj, B.DramEnergyPj);
  EXPECT_EQ(A.EdpPjCycles, B.EdpPjCycles);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.ComputeCycles, B.ComputeCycles);
  EXPECT_EQ(A.DramCycles, B.DramCycles);
  EXPECT_EQ(A.SramCycles, B.SramCycles);
  EXPECT_EQ(A.MacIpc, B.MacIpc);
  expectSameProfile(A.Profile, B.Profile);
}

void expectSameMapping(const Mapping &A, const Mapping &B) {
  ASSERT_EQ(A.Factors.size(), B.Factors.size());
  for (std::size_t I = 0; I < A.Factors.size(); ++I)
    for (unsigned L = 0; L < NumTileLevels; ++L)
      EXPECT_EQ(A.Factors[I][L], B.Factors[I][L]);
  EXPECT_EQ(A.DramPerm, B.DramPerm);
  EXPECT_EQ(A.PePerm, B.PePerm);
}

} // namespace

TEST(Equivalence, NestProfileMatchesLegacyBitForBit) {
  ArchConfig Arch = eyerissArch();
  for (const Problem &P : equivalenceWorkloads()) {
    DivisorTable Divs;
    for (const Iterator &It : P.iterators())
      Divs.populate(It.Extent);
    Rng R(7);
    for (int Trial = 0; Trial < 300; ++Trial) {
      Mapping Map = legacyref::sampleMapping(P, Arch, Divs, R);
      ASSERT_TRUE(Map.validate(P).empty());
      expectSameProfile(analyzeNest(P, Map), legacyref::analyzeNest(P, Map));
    }
  }
}

TEST(Equivalence, EvalResultMatchesLegacyBitForBit) {
  ArchConfig Arch = eyerissArch();
  EnergyModel E(TechParams::cgo45nm());
  for (const Problem &P : equivalenceWorkloads()) {
    DivisorTable Divs;
    for (const Iterator &It : P.iterators())
      Divs.populate(It.Extent);
    Rng R(11);
    unsigned Illegal = 0;
    for (int Trial = 0; Trial < 300; ++Trial) {
      Mapping Map = legacyref::sampleMapping(P, Arch, Divs, R);
      // Shake the permutations and factors around so both legal and
      // illegal candidates are diffed.
      legacyref::mutateMapping(Map, R);
      ASSERT_TRUE(Map.validate(P).empty());
      EvalResult New = evaluateMapping(P, Map, Arch, E);
      EvalResult Old = legacyref::evaluateMapping(P, Map, Arch, E);
      expectSameEval(New, Old);
      Illegal += New.Legal ? 0 : 1;
    }
    EXPECT_GT(Illegal, 0u) << "want illegal mappings in the diff set";
  }
}

TEST(Equivalence, UntiledAndDegenerateMappingsMatch) {
  ArchConfig Arch = eyerissArch();
  EnergyModel E(TechParams::cgo45nm());
  for (const Problem &P : equivalenceWorkloads()) {
    Mapping Untiled = Mapping::untiled(P);
    expectSameEval(evaluateMapping(P, Untiled, Arch, E),
                   legacyref::evaluateMapping(P, Untiled, Arch, E));
  }
}

TEST(Equivalence, MapperTrajectoriesMatchLegacyAcrossStrategies) {
  ArchConfig Arch = eyerissArch();
  EnergyModel E(TechParams::cgo45nm());
  Problem P = equivalenceWorkloads()[0];
  for (MapperStrategy Strategy :
       {MapperStrategy::RandomSampling, MapperStrategy::HillClimb,
        MapperStrategy::Anneal}) {
    for (SearchObjective Objective :
         {SearchObjective::Energy, SearchObjective::EnergyDelayProduct}) {
      MapperOptions Opts;
      Opts.Strategy = Strategy;
      Opts.Objective = Objective;
      Opts.Seed = 42;
      Opts.MaxTrials = 768;
      Opts.VictoryCondition = 200;
      Opts.Threads = 1;
      MapperResult New = searchMappings(P, Arch, E, Opts);
      MapperResult Old = legacyref::searchMappings(P, Arch, E, Opts);
      EXPECT_EQ(New.Found, Old.Found);
      EXPECT_EQ(New.Trials, Old.Trials);
      EXPECT_EQ(New.LegalTrials, Old.LegalTrials);
      ASSERT_TRUE(New.Found);
      expectSameMapping(New.Best, Old.Best);
      expectSameEval(New.BestEval, Old.BestEval);
    }
  }
}

TEST(Equivalence, MapperMatchesLegacyAtEveryThreadCount) {
  ArchConfig Arch = eyerissArch();
  EnergyModel E(TechParams::cgo45nm());
  Problem P = equivalenceWorkloads()[2];
  MapperOptions Opts;
  Opts.Strategy = MapperStrategy::Anneal;
  Opts.Seed = 5;
  Opts.MaxTrials = 512;
  Opts.VictoryCondition = 150;
  Opts.Threads = 1;
  MapperResult Ref = legacyref::searchMappings(P, Arch, E, Opts);
  ASSERT_TRUE(Ref.Found);
  for (unsigned Threads : {1u, 2u, 5u, 16u}) {
    Opts.Threads = Threads;
    MapperResult New = searchMappings(P, Arch, E, Opts);
    EXPECT_EQ(New.Trials, Ref.Trials) << Threads << " threads";
    EXPECT_EQ(New.LegalTrials, Ref.LegalTrials);
    ASSERT_TRUE(New.Found);
    expectSameMapping(New.Best, Ref.Best);
    expectSameEval(New.BestEval, Ref.BestEval);
  }
}

TEST(Equivalence, OptimizerWinnerEvaluatesIdentically) {
  // The GP optimizer reports metrics through the wrapped evaluator; the
  // winner must carry exactly the numbers the legacy evaluator assigns.
  ConvLayer L;
  L.K = 16;
  L.C = 16;
  L.Hin = 14;
  L.Win = 14;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  ArchConfig Arch = eyerissArch();
  TechParams Tech = TechParams::cgo45nm();
  ThistleOptions Options;
  Options.Threads = 1;
  ThistleResult R = optimizeLayer(P, Arch, Tech, Options, 0.0);
  ASSERT_TRUE(R.Found);
  EnergyModel E(Tech);
  expectSameEval(R.Eval, legacyref::evaluateMapping(P, R.Map, Arch, E));
}
