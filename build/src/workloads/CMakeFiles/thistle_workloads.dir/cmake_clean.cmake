file(REMOVE_RECURSE
  "CMakeFiles/thistle_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/thistle_workloads.dir/Workloads.cpp.o.d"
  "libthistle_workloads.a"
  "libthistle_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thistle_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
