# Empty dependencies file for thistle_export.
# This may be replaced when dependencies are built.
