//===- expr/Signomial.cpp - Sums of monomials -----------------------------===//

#include "expr/Signomial.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

using namespace thistle;

Signomial::Signomial(Monomial M) {
  if (M.coefficient() != 0.0)
    Monomials.push_back(std::move(M));
}

Signomial Signomial::constant(double Value) {
  return Signomial(Monomial(Value));
}

Signomial Signomial::variable(VarId Var) {
  return Signomial(Monomial::variable(Var));
}

void Signomial::canonicalize() {
  std::stable_sort(Monomials.begin(), Monomials.end(),
                   [](const Monomial &A, const Monomial &B) {
                     return A.variablesLessThan(B);
                   });
  std::vector<Monomial> Merged;
  for (const Monomial &M : Monomials) {
    if (!Merged.empty() && Merged.back().sameVariablesAs(M)) {
      double Sum = Merged.back().coefficient() + M.coefficient();
      if (Sum == 0.0)
        Merged.pop_back();
      else
        Merged.back() = M.scaled(Sum / M.coefficient());
      continue;
    }
    if (M.coefficient() != 0.0)
      Merged.push_back(M);
  }
  Monomials = std::move(Merged);
}

bool Signomial::isPosynomial() const {
  for (const Monomial &M : Monomials)
    if (M.coefficient() <= 0.0)
      return false;
  return !Monomials.empty();
}

const Monomial &Signomial::asMonomial() const {
  assert(Monomials.size() == 1 && "signomial is not a single monomial");
  return Monomials.front();
}

Signomial Signomial::operator+(const Signomial &Other) const {
  Signomial Out = *this;
  Out += Other;
  return Out;
}

Signomial &Signomial::operator+=(const Signomial &Other) {
  Monomials.insert(Monomials.end(), Other.Monomials.begin(),
                   Other.Monomials.end());
  canonicalize();
  return *this;
}

Signomial Signomial::operator-(const Signomial &Other) const {
  return *this + Other.scaled(-1.0);
}

Signomial Signomial::operator*(const Signomial &Other) const {
  Signomial Out;
  for (const Monomial &A : Monomials)
    for (const Monomial &B : Other.Monomials)
      Out.Monomials.push_back(A * B);
  Out.canonicalize();
  return Out;
}

Signomial Signomial::operator*(const Monomial &M) const {
  Signomial Out;
  for (const Monomial &A : Monomials)
    Out.Monomials.push_back(A * M);
  Out.canonicalize();
  return Out;
}

Signomial Signomial::scaled(double Scale) const {
  if (Scale == 0.0)
    return Signomial();
  Signomial Out;
  for (const Monomial &A : Monomials)
    Out.Monomials.push_back(A.scaled(Scale));
  // Scaling preserves canonical order and cannot create merges.
  return Out;
}

Signomial Signomial::substituted(VarId Var, const Monomial &Repl) const {
  Signomial Out;
  for (const Monomial &A : Monomials)
    Out.Monomials.push_back(A.substituted(Var, Repl));
  Out.canonicalize();
  return Out;
}

Signomial Signomial::posynomialUpperBound() const {
  Signomial Out;
  for (const Monomial &A : Monomials)
    if (A.coefficient() > 0.0)
      Out.Monomials.push_back(A);
  return Out;
}

double Signomial::evaluate(const Assignment &Values) const {
  double Sum = 0.0;
  for (const Monomial &A : Monomials)
    Sum += A.evaluate(Values);
  return Sum;
}

bool Signomial::mentions(VarId Var) const {
  for (const Monomial &A : Monomials)
    if (A.mentions(Var))
      return true;
  return false;
}

std::string Signomial::toString(const VarTable &Table) const {
  if (Monomials.empty())
    return "0";
  // Print variable terms before constants (paper style: "x + y - 1").
  std::vector<Monomial> Ordered;
  for (const Monomial &M : Monomials)
    if (!M.isConstant())
      Ordered.push_back(M);
  for (const Monomial &M : Monomials)
    if (M.isConstant())
      Ordered.push_back(M);
  std::ostringstream OS;
  for (std::size_t I = 0; I < Ordered.size(); ++I) {
    const Monomial &M = Ordered[I];
    if (I == 0) {
      OS << M.toString(Table);
      continue;
    }
    if (M.coefficient() < 0.0)
      OS << " - " << M.scaled(-1.0).toString(Table);
    else
      OS << " + " << M.toString(Table);
  }
  return OS.str();
}

bool Signomial::operator==(const Signomial &Other) const {
  if (Monomials.size() != Other.Monomials.size())
    return false;
  for (std::size_t I = 0; I < Monomials.size(); ++I) {
    if (Monomials[I].coefficient() != Other.Monomials[I].coefficient() ||
        !Monomials[I].sameVariablesAs(Other.Monomials[I]))
      return false;
  }
  return true;
}
