file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_energy_eyeriss.dir/bench_fig4_energy_eyeriss.cpp.o"
  "CMakeFiles/bench_fig4_energy_eyeriss.dir/bench_fig4_energy_eyeriss.cpp.o.d"
  "bench_fig4_energy_eyeriss"
  "bench_fig4_energy_eyeriss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_energy_eyeriss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
