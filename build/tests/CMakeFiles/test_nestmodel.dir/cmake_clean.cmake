file(REMOVE_RECURSE
  "CMakeFiles/test_nestmodel.dir/NestModelTest.cpp.o"
  "CMakeFiles/test_nestmodel.dir/NestModelTest.cpp.o.d"
  "test_nestmodel"
  "test_nestmodel.pdb"
  "test_nestmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nestmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
