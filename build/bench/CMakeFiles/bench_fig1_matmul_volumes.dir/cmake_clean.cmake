file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_matmul_volumes.dir/bench_fig1_matmul_volumes.cpp.o"
  "CMakeFiles/bench_fig1_matmul_volumes.dir/bench_fig1_matmul_volumes.cpp.o.d"
  "bench_fig1_matmul_volumes"
  "bench_fig1_matmul_volumes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_matmul_volumes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
