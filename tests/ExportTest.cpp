//===- tests/ExportTest.cpp - Timeloop YAML export tests ------------------===//

#include "export/TimeloopExport.h"
#include "ir/Builders.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace thistle;

namespace {

bool contains(const std::string &Haystack, const std::string &Needle) {
  return Haystack.find(Needle) != std::string::npos;
}

} // namespace

TEST(TimeloopExport, ArchSpecFields) {
  std::string Yaml = exportTimeloopArch(eyerissArch(), TechParams::cgo45nm());
  EXPECT_TRUE(contains(Yaml, "architecture:"));
  EXPECT_TRUE(contains(Yaml, "name: DRAM"));
  EXPECT_TRUE(contains(Yaml, "class: SRAM"));
  EXPECT_TRUE(contains(Yaml, "depth: 65536"));
  EXPECT_TRUE(contains(Yaml, "PE[0..167]")); // 168 PEs.
  EXPECT_TRUE(contains(Yaml, "depth: 512")); // Register file.
  EXPECT_TRUE(contains(Yaml, "class: intmac"));
  EXPECT_TRUE(contains(Yaml, "word-bits: 16"));
}

TEST(TimeloopExport, ProblemSpecProjections) {
  ConvLayer L;
  L.K = 8;
  L.C = 4;
  L.Hin = 16;
  L.Win = 16;
  L.R = 3;
  L.S = 3;
  L.StrideX = 2;
  L.StrideY = 2;
  std::string Yaml = exportTimeloopProblem(makeConvProblem(L));
  EXPECT_TRUE(contains(Yaml, "problem:"));
  EXPECT_TRUE(contains(Yaml, "dimensions: [ N, K, C, R, S, H, W ]"));
  EXPECT_TRUE(contains(Yaml, "name: Out"));
  EXPECT_TRUE(contains(Yaml, "read-write: true"));
  // Strided projection of In's H dimension: [ H, 2 ], [ R ].
  EXPECT_TRUE(contains(Yaml, "[ H, 2 ]"));
  EXPECT_TRUE(contains(Yaml, "[ R ]"));
  // Instance extents.
  EXPECT_TRUE(contains(Yaml, "K: 8"));
  EXPECT_TRUE(contains(Yaml, "H: 8")); // ceil(16/2).
}

TEST(TimeloopExport, MatmulProblemSpec) {
  std::string Yaml = exportTimeloopProblem(makeMatmulProblem(64, 64, 64));
  EXPECT_TRUE(contains(Yaml, "dimensions: [ I, J, K ]"));
  EXPECT_TRUE(contains(Yaml, "name: C"));
  EXPECT_TRUE(contains(Yaml, "I: 64"));
}

TEST(TimeloopExport, MappingSpecFactorsAndPermutation) {
  Problem P = makeMatmulProblem(8, 8, 8);
  Mapping M = Mapping::untiled(P);
  unsigned Ii = P.iteratorIndex("i"), Ij = P.iteratorIndex("j"),
           Ik = P.iteratorIndex("k");
  M.factor(Ii, TileLevel::Register) = 2;
  M.factor(Ii, TileLevel::Spatial) = 4;
  M.factor(Ij, TileLevel::Register) = 4;
  M.factor(Ij, TileLevel::DramTemporal) = 2;
  M.DramPerm = {Ii, Ik, Ij};
  M.PePerm = {Ik, Ij, Ii};
  ASSERT_TRUE(M.validate(P).empty());

  std::string Yaml = exportTimeloopMapping(P, M);
  EXPECT_TRUE(contains(Yaml, "target: DRAM"));
  EXPECT_TRUE(contains(Yaml, "type: spatial"));
  EXPECT_TRUE(contains(Yaml, "target: RegisterFile"));
  // DRAM factors: I=1 J=2 K=1.
  EXPECT_TRUE(contains(Yaml, "factors: I=1 J=2 K=1"));
  // Spatial factors: I=4.
  EXPECT_TRUE(contains(Yaml, "factors: I=4 J=1 K=1"));
  // Register factors: I=2 J=4 K=8.
  EXPECT_TRUE(contains(Yaml, "factors: I=2 J=4 K=8"));
  // Timeloop permutations are innermost-to-outermost: DRAM <i,k,j>
  // becomes "J K I".
  EXPECT_TRUE(contains(Yaml, "permutation: J K I"));
  EXPECT_TRUE(contains(Yaml, "permutation: I J K")); // PE <k,j,i>.
}

TEST(TimeloopExport, MappingRoundTripsThroughLevels) {
  // Every level's factors appear; their per-dimension product equals the
  // instance extent (checked via the Mapping invariant the exporter
  // relies on).
  ConvLayer L;
  L.K = 8;
  L.C = 8;
  L.Hin = 8;
  L.Win = 8;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  Mapping M = Mapping::untiled(P);
  std::string Yaml = exportTimeloopMapping(P, M);
  // Untiled: everything at the register level.
  EXPECT_TRUE(contains(Yaml, "factors: N=1 K=8 C=8 R=3 S=3 H=8 W=8"));
}
