//===- thistle/ServeEngine.cpp - Long-lived co-design service -------------===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "thistle/ServeEngine.h"

#include "support/Json.h"
#include "support/JsonWriter.h"
#include "support/Persist.h"
#include "support/Telemetry.h"
#include "thistle/Network.h"
#include "thistle/Optimizer.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <utility>

using namespace thistle;
using json::JsonValue;

namespace {

constexpr const char *ServeSchema = "thistle-serve/1";

/// The stable status token of each thistle-opt exit code
/// (docs/SERVING.md mirrors docs/THISTLE_OPT.md).
const char *statusForExit(int Exit) {
  switch (Exit) {
  case 0:
    return "ok";
  case 1:
    return "degraded";
  case 2:
    return "invalid";
  case 3:
    return "no-design";
  }
  return "error";
}

const char *modeName(DesignMode Mode) {
  return Mode == DesignMode::CoDesign ? "codesign" : "dataflow";
}

const char *objectiveName(SearchObjective Obj) {
  return Obj == SearchObjective::Energy  ? "energy"
         : Obj == SearchObjective::Delay ? "delay"
                                         : "edp";
}

} // namespace

/// One admitted query plus the slot its answer lands in. Query fields
/// are immutable after admission; the outcome fields are written by the
/// solver thread before Done flips, then only read.
struct ServeEngine::SolveJob {
  bool IsNetwork = false;
  ConvLayer Layer;                     ///< IsNetwork == false.
  std::string NetworkName;             ///< IsNetwork == true.
  std::vector<ConvLayer> NetworkLayers;
  DesignMode Mode = DesignMode::DataflowOnly;
  SearchObjective Objective = SearchObjective::Energy;
  unsigned Candidates = 0; ///< 0 = the rounding default.
  std::uint64_t DeadlineMs = 0;
  double AreaBudget = 0.0;
  ArchConfig Arch;
  /// Canonical dedup key over every result-relevant resolved parameter
  /// (including the deadline: a budget-limited solve may legitimately
  /// answer differently from an unlimited one, so they never share).
  std::string Key;

  std::mutex M;
  std::condition_variable Cv;
  bool Done = false;
  int ExitCode = 0;
  std::string Error;           ///< Non-empty only for exit code 2.
  std::string CanonicalReport; ///< Empty for exit code 2.
  /// The solve's cache traffic (before/after counter deltas — exact,
  /// because solves are serialized on one thread). Attributed to the
  /// admitting request only; dedup joiners report zeros, so the sum
  /// across all responses equals the process totals.
  std::uint64_t DHits = 0, DMisses = 0, DWarm = 0, DEvict = 0;
};

namespace {

/// Parses the "workload" member into the job. Mirrors thistle-opt's
/// --layer/--resnet/--yolo/--network handling, including the workload
/// names that end up in the run report.
Status parseWorkload(const JsonValue &W, ServeEngine::SolveJob &Job) {
  if (!W.isObject())
    return Status::invalidArgument("\"workload\" must be an object");
  if (W.members().size() != 1)
    return Status::invalidArgument(
        "\"workload\" wants exactly one of layer/resnet/yolo/network");
  const auto &[Kind, V] = W.members().front();
  auto parseLayerDims = [&Job](const JsonValue &A) -> Status {
    if (!A.isArray() || A.array().size() < 6 || A.array().size() > 8)
      return Status::invalidArgument(
          "\"layer\" wants [K,C,H,W,R,S[,stride[,dilation]]]");
    std::vector<std::int64_t> Dims;
    for (const JsonValue &E : A.array()) {
      std::uint64_t N = 0;
      if (!E.asUint(N) || N < 1)
        return Status::invalidArgument(
            "\"layer\" dimensions must be positive integers");
      Dims.push_back(static_cast<std::int64_t>(N));
    }
    Job.Layer.Name = "custom";
    Job.Layer.K = Dims[0];
    Job.Layer.C = Dims[1];
    Job.Layer.Hin = Dims[2];
    Job.Layer.Win = Dims[3];
    Job.Layer.R = Dims[4];
    Job.Layer.S = Dims[5];
    Job.Layer.StrideX = Job.Layer.StrideY = Dims.size() > 6 ? Dims[6] : 1;
    Job.Layer.DilationX = Job.Layer.DilationY =
        Dims.size() > 7 ? Dims[7] : 1;
    return Status::ok();
  };
  if (Kind == "layer") {
    // Two wire forms: the [K,C,H,W,R,S[,stride[,dilation]]] array, or an
    // object whose "dims" is that array plus the general-conv fields
    // ("groups", "transposed", "padding" — docs/WORKLOADS.md). Either way
    // the layer passes the same ConvLayer::validate() the CLI uses.
    if (V.isObject()) {
      const JsonValue *Dims = nullptr;
      for (const auto &[LK, LV] : V.members()) {
        if (LK == "dims") {
          Dims = &LV;
        } else if (LK == "groups") {
          std::uint64_t N = 0;
          if (!LV.asUint(N) || N < 1)
            return Status::invalidArgument(
                "\"layer.groups\" wants a positive integer");
          Job.Layer.Groups = static_cast<std::int64_t>(N);
        } else if (LK == "transposed") {
          if (!LV.isBool())
            return Status::invalidArgument(
                "\"layer.transposed\" wants a boolean");
          Job.Layer.Transposed = LV.boolean();
        } else if (LK == "padding") {
          if (!LV.isString())
            return Status::invalidArgument(
                "\"layer.padding\" wants \"same\" or \"valid\"");
          Expected<ConvPadding> P = parsePadding(LV.string());
          if (!P) {
            Status St = P.status();
            return St.withContext("\"layer.padding\"");
          }
          Job.Layer.Padding = P.value();
        } else {
          return Status::invalidArgument("unknown layer field '" + LK +
                                         "'");
        }
      }
      if (!Dims)
        return Status::invalidArgument("\"layer\" object needs \"dims\"");
      if (Status St = parseLayerDims(*Dims); !St.isOk())
        return St;
    } else if (Status St = parseLayerDims(V); !St.isOk()) {
      return St;
    }
    return Job.Layer.validate();
  }
  if (Kind == "resnet" || Kind == "yolo") {
    std::vector<ConvLayer> Layers =
        Kind == "resnet" ? resnet18Layers() : yolo9000Layers();
    std::uint64_t N = 0;
    if (!V.asUint(N) || N < 1 || N > Layers.size())
      return Status::invalidArgument("\"" + Kind + "\" index out of range "
                                     "(1-" + std::to_string(Layers.size()) +
                                     ")");
    Job.Layer = Layers[static_cast<std::size_t>(N - 1)];
    return Status::ok();
  }
  if (Kind == "network") {
    if (!V.isString())
      return Status::invalidArgument("\"network\" wants a string");
    const std::string &Name = V.string();
    if (Name == "resnet18")
      Job.NetworkLayers = resnet18NetworkLayers();
    else if (Name == "yolo9000")
      Job.NetworkLayers = yolo9000NetworkLayers();
    else if (Name == "mobilenetv2")
      Job.NetworkLayers = mobilenetV2NetworkLayers();
    else if (Name == "dcgan")
      Job.NetworkLayers = dcganNetworkLayers();
    else if (Name == "all")
      Job.NetworkLayers = allNetworkLayers();
    else
      return Status::invalidArgument("unknown network '" + Name + "'");
    Job.IsNetwork = true;
    Job.NetworkName = Name;
    return Status::ok();
  }
  return Status::invalidArgument("unknown workload kind '" + Kind + "'");
}

/// Parses and validates one "query" object into \p Job and builds its
/// canonical dedup key. Strict about unknown members so client typos
/// (e.g. "deadline" for "deadline_ms") surface as errors, not silently
/// different queries.
Status parseQuery(const JsonValue &Q, const TechParams &Tech,
                  ServeEngine::SolveJob &Job) {
  if (!Q.isObject())
    return Status::invalidArgument("\"query\" must be an object");
  Job.Arch = eyerissArch();

  const JsonValue *Workload = nullptr;
  for (const auto &[K, V] : Q.members()) {
    if (K == "workload") {
      Workload = &V;
    } else if (K == "mode") {
      if (!V.isString())
        return Status::invalidArgument("\"mode\" wants a string");
      if (V.string() == "dataflow")
        Job.Mode = DesignMode::DataflowOnly;
      else if (V.string() == "codesign")
        Job.Mode = DesignMode::CoDesign;
      else
        return Status::invalidArgument("unknown mode '" + V.string() + "'");
    } else if (K == "objective") {
      if (!V.isString())
        return Status::invalidArgument("\"objective\" wants a string");
      if (V.string() == "energy")
        Job.Objective = SearchObjective::Energy;
      else if (V.string() == "delay")
        Job.Objective = SearchObjective::Delay;
      else if (V.string() == "edp")
        Job.Objective = SearchObjective::EnergyDelayProduct;
      else
        return Status::invalidArgument("unknown objective '" + V.string() +
                                       "'");
    } else if (K == "candidates") {
      std::uint64_t N = 0;
      if (!V.asUint(N) || N < 1)
        return Status::invalidArgument(
            "\"candidates\" wants a positive integer");
      Job.Candidates = static_cast<unsigned>(N);
    } else if (K == "deadline_ms") {
      std::uint64_t N = 0;
      if (!V.asUint(N) || N < 1)
        return Status::invalidArgument(
            "\"deadline_ms\" wants a positive millisecond count");
      Job.DeadlineMs = N;
    } else if (K == "area_budget") {
      if (!V.isNumber() || V.number() <= 0.0)
        return Status::invalidArgument(
            "\"area_budget\" wants a positive um^2 area");
      Job.AreaBudget = V.number();
    } else if (K == "arch") {
      if (!V.isObject())
        return Status::invalidArgument("\"arch\" must be an object");
      for (const auto &[AK, AV] : V.members()) {
        std::uint64_t N = 0;
        if (!AV.asUint(N) || N < 1)
          return Status::invalidArgument("\"arch." + AK +
                                         "\" wants a positive integer");
        if (AK == "pes")
          Job.Arch.NumPEs = static_cast<std::int64_t>(N);
        else if (AK == "regs")
          Job.Arch.RegWordsPerPE = static_cast<std::int64_t>(N);
        else if (AK == "sram_words")
          Job.Arch.SramWords = static_cast<std::int64_t>(N);
        else
          return Status::invalidArgument("unknown arch field '" + AK + "'");
      }
    } else {
      return Status::invalidArgument("unknown query field '" + K + "'");
    }
  }
  if (!Workload)
    return Status::invalidArgument("\"query\" needs a \"workload\"");
  if (Status St = parseWorkload(*Workload, Job); !St.isOk())
    return St;

  // CoDesign defaults the area budget to the Eyeriss area, exactly as
  // thistle-opt does. Resolving before the key is built lets an
  // explicit equal budget share the in-flight solve.
  if (Job.Mode == DesignMode::CoDesign && Job.AreaBudget == 0.0)
    Job.AreaBudget = eyerissAreaUm2(Tech);

  // The layer part of the key covers every ConvLayer field the solve can
  // depend on — both stride/dilation axes, groups, transposed and the
  // padding convention — so distinct general-conv queries never share an
  // in-flight solve.
  std::string Key =
      Job.IsNetwork ? "network:" + Job.NetworkName
                    : "layer:" + std::to_string(Job.Layer.K) + "," +
                          std::to_string(Job.Layer.C) + "," +
                          std::to_string(Job.Layer.Hin) + "," +
                          std::to_string(Job.Layer.Win) + "," +
                          std::to_string(Job.Layer.R) + "," +
                          std::to_string(Job.Layer.S) + "," +
                          std::to_string(Job.Layer.StrideX) + "," +
                          std::to_string(Job.Layer.StrideY) + "," +
                          std::to_string(Job.Layer.DilationX) + "," +
                          std::to_string(Job.Layer.DilationY) + "," +
                          std::to_string(Job.Layer.Groups) + "," +
                          (Job.Layer.Transposed ? "t" : "d") + "," +
                          paddingName(Job.Layer.Padding) + ":" +
                          Job.Layer.Name;
  Key += "|mode=";
  Key += modeName(Job.Mode);
  Key += "|obj=";
  Key += objectiveName(Job.Objective);
  Key += "|cand=" + std::to_string(Job.Candidates);
  Key += "|area=" + json::number(Job.AreaBudget);
  Key += "|pes=" + std::to_string(Job.Arch.NumPEs);
  Key += "|regs=" + std::to_string(Job.Arch.RegWordsPerPE);
  Key += "|sram=" + std::to_string(Job.Arch.SramWords);
  Key += "|deadline=" + std::to_string(Job.DeadlineMs);
  Job.Key = std::move(Key);
  return Status::ok();
}

/// The per-request `server` section (always last in the envelope, so
/// clients that byte-compare the deterministic prefix can cut at
/// `,"server":`).
struct ServerSection {
  bool Deduplicated = false;
  std::size_t QueueDepth = 0;
  double LatencyMs = 0.0;
  std::uint64_t Hits = 0, Misses = 0, WarmStarts = 0, Evictions = 0;
};

void writeServerSection(json::Writer &W, const ServerSection &S) {
  W.key("server");
  W.beginObject();
  W.key("deduplicated");
  W.value(S.Deduplicated);
  W.key("queue_depth");
  W.value(static_cast<std::uint64_t>(S.QueueDepth));
  W.key("latency_ms");
  W.value(S.LatencyMs);
  W.key("cache");
  W.beginObject();
  W.key("hit");
  W.value(S.Hits);
  W.key("miss");
  W.value(S.Misses);
  W.key("warmstart");
  W.value(S.WarmStarts);
  W.key("evictions");
  W.value(S.Evictions);
  W.endObject();
  W.endObject();
}

/// Builds one complete response line. \p IdJson is the request id
/// re-serialized ("null" when absent), \p ReportJson the canonical
/// report ("" = null), \p ServeStatsJson an optional pre-serialized
/// `serve` object (the stats command; "" = omitted).
std::string buildEnvelope(const std::string &IdJson, int ExitCode,
                          const std::string &Error,
                          const std::string &ReportJson,
                          const std::string &ServeStatsJson,
                          const ServerSection &Server) {
  std::ostringstream OS;
  json::Writer W(OS, /*Compact=*/true);
  W.beginObject();
  W.key("schema");
  W.value(ServeSchema);
  W.key("id");
  W.rawValue(IdJson);
  W.key("status");
  W.value(statusForExit(ExitCode));
  W.key("exit_code");
  W.value(ExitCode);
  W.key("error");
  if (Error.empty())
    W.null();
  else
    W.value(Error);
  W.key("report");
  if (ReportJson.empty())
    W.null();
  else
    W.rawValue(ReportJson);
  if (!ServeStatsJson.empty()) {
    W.key("serve");
    W.rawValue(ServeStatsJson);
  }
  writeServerSection(W, Server);
  W.endObject();
  return OS.str();
}

/// Re-serializes a request id for the echo: numbers and strings pass
/// through, anything else (including absence) becomes null.
std::string idJsonOf(const JsonValue &Root) {
  const JsonValue *Id = Root.isObject() ? Root.find("id") : nullptr;
  if (!Id)
    return "null";
  if (Id->isNumber())
    return json::number(Id->number());
  if (Id->isString())
    return "\"" + json::escape(Id->string()) + "\"";
  return "null";
}

} // namespace

ServeEngine::ServeEngine(ServeOptions Options)
    : Opts(std::move(Options)), Pool(Opts.Threads),
      Tech(TechParams::cgo45nm()) {}

ServeEngine::~ServeEngine() { shutdown(); }

Status ServeEngine::start() {
  Cache.setCapacity(static_cast<std::size_t>(Opts.CacheCapacity));
  if (!Opts.CacheDir.empty()) {
    if (Status St = persist::createDirectories(Opts.CacheDir); !St.isOk())
      return St.withContext("creating cache directory");
    SnapPath = Opts.CacheDir + "/gpcache.snap";
    JournalPath = Opts.CacheDir + "/gpcache.journal";
    // The compacted snapshot first, then the journal of any process
    // that died before compacting — the same artifacts, in the same
    // order, as thistle-opt --cache-dir.
    Cache.loadFile(SnapPath, LoadStats);
    Cache.loadFile(JournalPath, LoadStats);
    if (Status St = Cache.attachJournal(JournalPath); !St.isOk())
      LoadStats.Problems.push_back("no checkpoint journal: " +
                                   St.toString());
    Persist = true;
  }
  {
    std::lock_guard<std::mutex> L(JobsMutex);
    Started = true;
  }
  Solver = std::thread(&ServeEngine::solverLoop, this);
  return Status::ok();
}

void ServeEngine::shutdown() {
  {
    std::lock_guard<std::mutex> L(JobsMutex);
    if (!Started || Finished) {
      Finished = true;
      return;
    }
    Finished = true;
    Stop = true;
  }
  QueueCv.notify_all();
  if (Solver.joinable())
    Solver.join();
  // Final compaction: fold the journal into one atomic snapshot and
  // drop it. On failure the journal is kept — nothing is lost, the
  // next start replays it.
  if (Persist) {
    Cache.detachJournal();
    if (Cache.saveSnapshotFile(SnapPath).isOk()) {
      SnapshotWritten = true;
      persist::removeFile(JournalPath);
      ++Compactions;
    }
  }
}

void ServeEngine::setHoldForTest(bool H) {
  {
    std::lock_guard<std::mutex> L(JobsMutex);
    Hold = H;
  }
  QueueCv.notify_all();
}

std::size_t ServeEngine::queuedForTest() const {
  std::lock_guard<std::mutex> L(JobsMutex);
  return Queue.size();
}

ServeStats ServeEngine::stats() const {
  ServeStats S;
  S.Requests = Requests.load();
  S.Queries = Queries.load();
  S.Errors = Errors.load();
  S.Deduplicated = Deduplicated.load();
  S.Solves = Solves.load();
  S.CacheHits = Cache.hits();
  S.CacheMisses = Cache.misses();
  S.CacheWarmStarts = Cache.warmStarts();
  S.CacheEvictions = Cache.evictions();
  S.Compactions = Compactions.load();
  return S;
}

void ServeEngine::fillReport(RunReport &RR) const {
  ServeStats S = stats();
  RR.Serve.Present = true;
  RR.Serve.Requests = S.Requests;
  RR.Serve.Queries = S.Queries;
  RR.Serve.Errors = S.Errors;
  RR.Serve.Deduplicated = S.Deduplicated;
  RR.Serve.Solves = S.Solves;
  RR.Serve.CacheHits = S.CacheHits;
  RR.Serve.CacheMisses = S.CacheMisses;
  RR.Serve.CacheWarmStarts = S.CacheWarmStarts;
  RR.Serve.CacheEvictions = S.CacheEvictions;
  RR.Serve.Compactions = S.Compactions;
  if (Persist) {
    RR.Persistence.Present = true;
    RR.Persistence.Directory = Opts.CacheDir;
    RR.Persistence.Capacity = Opts.CacheCapacity;
    RR.Persistence.LoadedFiles = LoadStats.FilesLoaded;
    RR.Persistence.LoadedEntries = LoadStats.EntriesLoaded;
    RR.Persistence.AppendFailures = Cache.journalAppendFailures();
    RR.Persistence.Evictions = Cache.evictions();
    RR.Persistence.DataLossDetected = LoadStats.DataLoss;
    RR.Persistence.Problems = LoadStats.Problems;
    RR.Persistence.SnapshotWritten = SnapshotWritten;
  }
}

void ServeEngine::solverLoop() {
  while (true) {
    std::shared_ptr<SolveJob> Job;
    {
      std::unique_lock<std::mutex> L(JobsMutex);
      QueueCv.wait(L, [&] {
        return (Stop || !Hold) && (Stop || !Queue.empty());
      });
      if (Queue.empty())
        return; // Stop with nothing queued: drained.
      Job = Queue.front();
      Queue.pop_front();
    }
    runJob(*Job);
    // Count before signaling so the totals are settled by the time any
    // waiter reads them off its response.
    std::uint64_t N = ++Solves;
    telemetry::count("thistle.serve.solves");
    {
      // Retire the in-flight entry before signaling: later identical
      // queries start a fresh job and replay from the (now hot) cache.
      std::lock_guard<std::mutex> L(JobsMutex);
      InFlight.erase(Job->Key);
    }
    {
      std::lock_guard<std::mutex> L(Job->M);
      Job->Done = true;
    }
    Job->Cv.notify_all();
    if (Persist && Opts.SnapshotEvery && N % Opts.SnapshotEvery == 0) {
      // Periodic compaction, from the solver thread so it never races a
      // journal append.
      Cache.detachJournal();
      if (Cache.saveSnapshotFile(SnapPath).isOk()) {
        SnapshotWritten = true;
        persist::removeFile(JournalPath);
        ++Compactions;
      }
      if (Status St = Cache.attachJournal(JournalPath); !St.isOk())
        LoadStats.Problems.push_back("re-attaching journal: " +
                                     St.toString());
    }
  }
}

void ServeEngine::runJob(SolveJob &Job) {
  const std::uint64_t H0 = Cache.hits(), M0 = Cache.misses();
  const std::uint64_t W0 = Cache.warmStarts(), E0 = Cache.evictions();

  ThistleOptions Opt;
  Opt.Mode = Job.Mode;
  Opt.Objective = Job.Objective;
  if (Job.Candidates)
    Opt.Rounding.NumCandidates = Job.Candidates;
  if (Job.DeadlineMs)
    Opt.Deadline = std::chrono::milliseconds(Job.DeadlineMs);

  RunReport RR;
  RR.Tool = "thistle-serve";
  RR.Mode = modeName(Job.Mode);
  RR.Objective = objectiveName(Job.Objective);
  RR.Hierarchy = "classic3";
  RR.Threads = Pool.numWorkers();

  int Exit = 0;
  if (!Job.IsNetwork) {
    RR.Workload = Job.Layer.Name;
    Problem Prob = makeConvProblem(Job.Layer);
    LayerRunContext Run;
    Run.Cache = &Cache;
    Run.Pool = &Pool;
    ThistleResult R =
        optimizeLayer(Prob, Job.Arch, Tech, Opt, Run, Job.AreaBudget);
    if (!R.InputStatus.isOk()) {
      Job.Error = R.InputStatus.toString();
      Exit = 2;
    } else {
      RR.HasSweep = true;
      RR.SweepTaskNoun = "pair";
      RR.Sweep = std::move(R.Report);
      if (!R.Found) {
        Exit = 3;
      } else {
        RR.Found = true;
        RR.EnergyPj = R.Eval.EnergyPj;
        RR.EnergyPerMacPj = R.Eval.EnergyPerMacPj;
        RR.Cycles = R.Eval.Cycles;
        RR.MacIpc = R.Eval.MacIpc;
        RR.EdpPjCycles = R.Eval.EdpPjCycles;
        Exit = RR.Sweep.clean() ? 0 : 1;
      }
    }
  } else {
    RR.Workload = "network:" + Job.NetworkName;
    NetworkOptions NO;
    NO.Layer = Opt;
    NO.Cache = &Cache;
    NO.Pool = &Pool;
    NetworkResult R =
        optimizeNetwork(Job.NetworkLayers, Job.Arch, Tech, NO,
                        Job.AreaBudget);
    if (!R.InputStatus.isOk()) {
      Job.Error = R.InputStatus.toString();
      Exit = 2;
    } else {
      RR.HasSweep = true;
      RR.SweepTaskNoun = "pair";
      RR.Sweep = SweepReport(R.Report);
      RR.Found = R.Found;
      RR.Network.Present = true;
      RR.Network.LayersTotal = R.Stats.LayersTotal;
      RR.Network.LayersFound = R.LayersFound;
      RR.Network.UniqueShapes = R.Stats.UniqueShapes;
      RR.Network.CacheEnabled = true;
      RR.Network.CacheHits = R.Stats.CacheHits;
      RR.Network.CacheMisses = R.Stats.CacheMisses;
      RR.Network.CacheWarmStarts = R.Stats.CacheWarmStarts;
      RR.Network.ArchCandidates = R.Stats.ArchCandidates;
      RR.Network.SummedObjective = R.Totals.SummedObjective;
      RR.Network.TotalEnergyPj = R.Totals.EnergyPj;
      RR.Network.TotalCycles = R.Totals.Cycles;
      RR.Network.TotalEdpPjCycles = R.Totals.EdpPjCycles;
      RR.Network.EnergyPerMacPj = R.Totals.EnergyPerMacPj;
      RR.Network.Macs = static_cast<std::uint64_t>(R.Totals.Macs);
      RR.EnergyPj = R.Totals.EnergyPj;
      RR.EnergyPerMacPj = R.Totals.EnergyPerMacPj;
      RR.Cycles = R.Totals.Cycles;
      RR.EdpPjCycles = R.Totals.EdpPjCycles;
      for (const NetworkLayerResult &L : R.Layers) {
        RunReportNetworkLayer Row;
        Row.Name = L.Name;
        Row.ShapeIndex = L.ShapeIndex;
        Row.Multiplicity = L.Multiplicity;
        Row.Deduplicated = L.Deduplicated;
        Row.Found = L.Result.Found;
        if (L.Result.Found) {
          Row.EnergyPj = L.Result.Eval.EnergyPj;
          Row.Cycles = L.Result.Eval.Cycles;
        }
        RR.Network.Layers.push_back(std::move(Row));
      }
      if (R.LayersFound == 0) {
        Exit = 3;
      } else {
        Exit = RR.Sweep.clean() ? 0 : 1;
        if (!R.Found)
          Exit = 1;
      }
    }
  }

  if (Exit != 2)
    Job.CanonicalReport = RR.toCanonicalJson();
  Job.ExitCode = Exit;
  Job.DHits = Cache.hits() - H0;
  Job.DMisses = Cache.misses() - M0;
  Job.DWarm = Cache.warmStarts() - W0;
  Job.DEvict = Cache.evictions() - E0;
}

std::string ServeEngine::handleLine(const std::string &Line) {
  const auto T0 = std::chrono::steady_clock::now();
  ++Requests;
  telemetry::count("thistle.serve.requests");
  auto latency = [&T0] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - T0)
        .count();
  };
  auto errorOut = [&](const std::string &IdJson, const std::string &Msg) {
    ++Errors;
    telemetry::count("thistle.serve.errors");
    ServerSection S;
    S.LatencyMs = latency();
    return buildEnvelope(IdJson, 2, Msg, "", "", S);
  };

  Expected<JsonValue> Parsed = json::parseJson(Line);
  if (!Parsed)
    return errorOut("null", Parsed.status().toString());
  const JsonValue &Root = Parsed.value();
  const std::string IdJson = idJsonOf(Root);
  if (!Root.isObject())
    return errorOut(IdJson, "request must be a JSON object");

  // Admin commands: small, never queued, answered inline.
  if (const JsonValue *Cmd = Root.find("cmd")) {
    if (!Cmd->isString())
      return errorOut(IdJson, "\"cmd\" wants a string");
    ServerSection S;
    if (Cmd->string() == "ping") {
      S.LatencyMs = latency();
      return buildEnvelope(IdJson, 0, "", "", "", S);
    }
    if (Cmd->string() == "stats") {
      ServeStats St = stats();
      std::ostringstream OS;
      json::Writer W(OS, /*Compact=*/true);
      W.beginObject();
      W.key("requests");
      W.value(St.Requests);
      W.key("queries");
      W.value(St.Queries);
      W.key("errors");
      W.value(St.Errors);
      W.key("deduplicated");
      W.value(St.Deduplicated);
      W.key("solves");
      W.value(St.Solves);
      W.key("cache_hits");
      W.value(St.CacheHits);
      W.key("cache_misses");
      W.value(St.CacheMisses);
      W.key("cache_warm_starts");
      W.value(St.CacheWarmStarts);
      W.key("cache_evictions");
      W.value(St.CacheEvictions);
      W.key("compactions");
      W.value(St.Compactions);
      W.endObject();
      S.LatencyMs = latency();
      return buildEnvelope(IdJson, 0, "", "", OS.str(), S);
    }
    if (Cmd->string() == "shutdown") {
      ShutdownFlag.store(true);
      S.LatencyMs = latency();
      return buildEnvelope(IdJson, 0, "", "", "", S);
    }
    return errorOut(IdJson, "unknown cmd '" + Cmd->string() + "'");
  }

  // Solve queries must name the protocol version they speak.
  const JsonValue *Schema = Root.find("schema");
  if (!Schema || !Schema->isString() || Schema->string() != ServeSchema)
    return errorOut(IdJson, std::string("\"schema\" must be \"") +
                                ServeSchema + "\"");
  const JsonValue *Query = Root.find("query");
  if (!Query)
    return errorOut(IdJson, "request needs a \"query\" (or a \"cmd\")");
  for (const auto &[K, V] : Root.members()) {
    (void)V;
    if (K != "schema" && K != "id" && K != "query")
      return errorOut(IdJson, "unknown request field '" + K + "'");
  }

  auto Fresh = std::make_shared<SolveJob>();
  if (Status St = parseQuery(*Query, Tech, *Fresh); !St.isOk())
    return errorOut(IdJson, St.toString());
  ++Queries;
  telemetry::count("thistle.serve.queries");

  // Admission: join an identical in-flight job or enqueue a new one.
  std::shared_ptr<SolveJob> Job;
  bool Created = false;
  std::size_t Depth = 0;
  {
    std::lock_guard<std::mutex> L(JobsMutex);
    if (Stop)
      Job = nullptr;
    else {
      Depth = Queue.size();
      auto It = InFlight.find(Fresh->Key);
      if (It != InFlight.end()) {
        Job = It->second;
      } else {
        Job = Fresh;
        InFlight.emplace(Job->Key, Job);
        Queue.push_back(Job);
        Created = true;
      }
    }
  }
  if (!Job)
    return errorOut(IdJson, "server is shutting down");
  if (Created) {
    QueueCv.notify_all();
  } else {
    ++Deduplicated;
    telemetry::count("thistle.serve.dedup");
  }
  telemetry::observe("thistle.serve.queue_depth",
                     static_cast<double>(Depth));

  {
    std::unique_lock<std::mutex> L(Job->M);
    Job->Cv.wait(L, [&] { return Job->Done; });
  }

  ServerSection S;
  S.Deduplicated = !Created;
  S.QueueDepth = Depth;
  if (Created) {
    // Joiners report zeros so the per-request cache counters sum to the
    // process totals (the stats-vs-report consistency contract).
    S.Hits = Job->DHits;
    S.Misses = Job->DMisses;
    S.WarmStarts = Job->DWarm;
    S.Evictions = Job->DEvict;
  }
  S.LatencyMs = latency();
  telemetry::observe("thistle.serve.latency_ms", S.LatencyMs);
  if (Job->ExitCode == 2)
    ++Errors;
  return buildEnvelope(IdJson, Job->ExitCode, Job->Error,
                       Job->CanonicalReport, "", S);
}
