file(REMOVE_RECURSE
  "libthistle_export.a"
)
