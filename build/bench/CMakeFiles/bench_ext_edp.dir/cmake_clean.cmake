file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_edp.dir/bench_ext_edp.cpp.o"
  "CMakeFiles/bench_ext_edp.dir/bench_ext_edp.cpp.o.d"
  "bench_ext_edp"
  "bench_ext_edp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_edp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
