//===- thistle/PermutationSpace.h - Pruned permutation enumeration -*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enumerates the tile-loop permutations of one temporal tiling level with
/// the paper's pruning (section III, "Pruning the design space"):
///
///  - stencil iterators (r, s) are never tiled, so they do not participate
///    (the caller passes only tiled iterators);
///  - two permutations whose Algorithm-1 cost expressions coincide are
///    merged: the cost depends only on, per tensor, which iterator is the
///    innermost *present* one and which absent iterators sit below it
///    (everything above only contributes order-independent products) —
///    the "once CanHoist is false for all tensors, outer order does not
///    matter" rule;
///  - problem symmetries (e.g. H/W with equal strides, which for the CNN
///    pairs with R/S) are detected and used by the optimizer to skip
///    mirror-image permutation pairs.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_THISTLE_PERMUTATIONSPACE_H
#define THISTLE_THISTLE_PERMUTATIONSPACE_H

#include "ir/Problem.h"

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace thistle {

/// The cost-relevant abstraction of a permutation at one temporal level.
struct PermSignature {
  /// Per tensor (in Problem::tensors() order).
  struct TensorSig {
    /// The streaming (innermost present) iterator when it matters for
    /// cost: -1 if no listed iterator is present (fully hoisted copy);
    /// NoHaloStream if the innermost present iterator does not appear in
    /// any multi-term (halo) dimension of the tensor — then Algorithm 1's
    /// replace() is numerically identical to multiply(), so the identity
    /// of the streaming iterator is cost-irrelevant; otherwise the
    /// iterator index.
    static constexpr int NoHaloStream = -2;
    int InnermostPresent = -1;
    /// Sorted absent iterators hoisted below the innermost present one.
    std::vector<unsigned> Hoisted;

    auto operator<=>(const TensorSig &) const = default;
  };
  std::vector<TensorSig> Tensors;

  auto operator<=>(const PermSignature &) const = default;

  /// Applies an iterator relabeling and a tensor reordering (from a
  /// problem symmetry); re-canonicalizes.
  PermSignature mapped(const std::vector<unsigned> &IterMap,
                       const std::vector<unsigned> &TensorMap) const;

  std::string toString(const Problem &Prob) const;
};

/// Computes the signature of \p Perm (outer-to-inner tiled iterators).
PermSignature permSignature(const Problem &Prob,
                            const std::vector<unsigned> &Perm);

/// One pruned equivalence class.
struct PermClass {
  std::vector<unsigned> Representative; ///< Outer-to-inner iterator order.
  PermSignature Signature;
  unsigned MemberCount = 0; ///< Raw permutations merged into this class.
};

/// Enumerates all |TiledIters|! permutations and merges them into
/// hoist-equivalence classes. Representatives are the lexicographically
/// first member.
std::vector<PermClass>
enumeratePermClasses(const Problem &Prob,
                     const std::vector<unsigned> &TiledIters);

/// A problem self-symmetry: relabeling iterators by IterMap and tensors
/// by TensorMap leaves the problem invariant (e.g. the CNN's
/// {h<->w, r<->s} swap when strides and extents match, or matmul's
/// i<->j swap which exchanges A and B).
struct ProblemSymmetry {
  std::vector<unsigned> IterMap;   ///< New iterator index per old index.
  std::vector<unsigned> TensorMap; ///< New tensor index per old index.
};

/// Finds symmetries among single transpositions and products of two
/// disjoint transpositions of equal-extent iterators.
std::vector<ProblemSymmetry> findProblemSymmetries(const Problem &Prob);

} // namespace thistle

#endif // THISTLE_THISTLE_PERMUTATIONSPACE_H
