//===- ir/Mapping.h - Multi-level tiled mapping -----------------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Mapping mirrors a Timeloop mapping specification (paper Fig. 3d): for
/// every iterator of a Problem, the trip counts at each tiling level, plus
/// the temporal loop permutations at the DRAM and per-PE levels. Following
/// the paper's notation (section III), the extent N_d of dimension d
/// factors as
///
///   N_d = s_d * p_d * q_d * r_d
///
/// where s_d is the DRAM-level temporal trip count (enumerating SRAM
/// tiles), p_d the spatial trip count (PE grid), q_d the per-PE temporal
/// trip count (enumerating register tiles), and r_d the register-level
/// tile size. The SRAM tile size is S_d = p_d*q_d*r_d and the per-PE tile
/// is Q_d = q_d*r_d. The spatial level needs no permutation (its order
/// does not affect cost, paper section III-A), and loops inside the
/// register tile never move data, so exactly two permutations matter.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_IR_MAPPING_H
#define THISTLE_IR_MAPPING_H

#include "ir/Problem.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace thistle {

/// Tiling levels, outer to inner.
enum class TileLevel : unsigned {
  DramTemporal = 0, ///< s_d: sequential loops enumerating SRAM tiles.
  Spatial = 1,      ///< p_d: parallel loops across the PE grid.
  PeTemporal = 2,   ///< q_d: per-PE sequential loops over register tiles.
  Register = 3,     ///< r_d: register-tile sizes (innermost compute loops).
};
inline constexpr unsigned NumTileLevels = 4;

/// A complete multi-level tiling of one Problem.
struct Mapping {
  /// Factors[i][l] is the trip count of iterator i at level l.
  std::vector<std::array<std::int64_t, NumTileLevels>> Factors;

  /// Outer-to-inner iterator order of the DRAM-level temporal tile loops.
  std::vector<unsigned> DramPerm;

  /// Outer-to-inner iterator order of the per-PE temporal tile loops.
  std::vector<unsigned> PePerm;

  /// Convenience accessor.
  std::int64_t factor(unsigned Iter, TileLevel Level) const {
    return Factors[Iter][static_cast<unsigned>(Level)];
  }
  std::int64_t &factor(unsigned Iter, TileLevel Level) {
    return Factors[Iter][static_cast<unsigned>(Level)];
  }

  /// Register-tile extents r_d per iterator.
  std::vector<std::int64_t> registerTileExtents() const;

  /// Per-PE tile extents Q_d = q_d * r_d per iterator.
  std::vector<std::int64_t> peTileExtents() const;

  /// SRAM tile extents S_d = p_d * q_d * r_d per iterator.
  std::vector<std::int64_t> sramTileExtents() const;

  /// Number of PEs used: product of spatial trip counts.
  std::int64_t numPEsUsed() const;

  /// Returns an empty string if the mapping is consistent with \p Prob,
  /// otherwise a diagnostic: factors must multiply to the extents, all
  /// factors must be >= 1, and both permutations must be permutations of
  /// all iterators.
  std::string validate(const Problem &Prob) const;

  /// The identity mapping: everything at the register level, identity
  /// permutations. A convenient starting point for tests and search.
  static Mapping untiled(const Problem &Prob);

  /// Renders the mapping in a Timeloop-flavoured form: one line per
  /// tiling level with the nonunit factors and the temporal permutation.
  std::string toString(const Problem &Prob) const;
};

} // namespace thistle

#endif // THISTLE_IR_MAPPING_H
