//===- bench/bench_network_cache.cpp - Network driver cache speedup -------===//
//
// Measures the GP solution cache on the network driver: a ResNet-18
// dataflow sweep solved cold (empty cache), then replayed against the
// populated cache, plus a cache-free baseline. The cached run must
// reproduce the cold run bit for bit — the speedup is pure wall clock.
// Writes BENCH_network.json so the perf trajectory is tracked across PRs.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/Persist.h"
#include "thistle/Network.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace thistle;
using namespace thistle::bench;

namespace {

struct Measurement {
  double Seconds = 0.0;
  NetworkResult Result;
};

Measurement measure(const std::vector<ConvLayer> &Layers,
                    GpSolutionCache *Cache) {
  NetworkOptions Opts;
  Opts.Layer =
      thistleOptions(DesignMode::DataflowOnly, SearchObjective::Energy);
  Opts.Cache = Cache;
  Measurement M;
  WallTimer T;
  M.Result = optimizeNetwork(Layers, eyerissArch(), TechParams::cgo45nm(),
                             Opts);
  M.Seconds = T.seconds();
  return M;
}

void printRow(const char *Name, const Measurement &M) {
  const NetworkStats &S = M.Result.Stats;
  std::printf("%-10s %6.2fs  %8.1f pairs/s  %5llu hits %5llu misses "
              "%3llu warm starts\n",
              Name, M.Seconds, S.PairsPlanned / M.Seconds,
              static_cast<unsigned long long>(S.CacheHits),
              static_cast<unsigned long long>(S.CacheMisses),
              static_cast<unsigned long long>(S.CacheWarmStarts));
}

void writeJson(const char *Path, const Measurement &NoCache,
               const Measurement &Cold, const Measurement &Cached) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path);
    return;
  }
  const NetworkStats &S = Cold.Result.Stats;
  std::fprintf(
      F,
      "{\n"
      "  \"bench\": \"network_cache\",\n"
      "  \"workload\": \"resnet18\",\n"
      "  \"layers\": %zu,\n"
      "  \"unique_shapes\": %zu,\n"
      "  \"pairs_planned\": %u,\n"
      "  \"seconds_no_cache\": %.4f,\n"
      "  \"seconds_cold\": %.4f,\n"
      "  \"seconds_cached\": %.4f,\n"
      "  \"pairs_per_s_cold\": %.2f,\n"
      "  \"pairs_per_s_cached\": %.2f,\n"
      "  \"cached_speedup\": %.3f,\n"
      "  \"cold_misses\": %llu,\n"
      "  \"cached_hits\": %llu,\n"
      "  \"cached_misses\": %llu,\n"
      "  \"warm_starts\": %llu\n"
      "}\n",
      S.LayersTotal, S.UniqueShapes, S.PairsPlanned, NoCache.Seconds,
      Cold.Seconds, Cached.Seconds, S.PairsPlanned / Cold.Seconds,
      S.PairsPlanned / Cached.Seconds, Cold.Seconds / Cached.Seconds,
      static_cast<unsigned long long>(S.CacheMisses),
      static_cast<unsigned long long>(Cached.Result.Stats.CacheHits),
      static_cast<unsigned long long>(Cached.Result.Stats.CacheMisses),
      static_cast<unsigned long long>(Cached.Result.Stats.CacheWarmStarts));
  std::fclose(F);
}

} // namespace

int main() {
  printHeader("network GP-solution cache",
              "ResNet-18 dataflow sweep: cache-free baseline, cold run "
              "(populating an\nempty cache), and cached replay. The cache "
              "must not change any result —\nonly the wall clock.");

  std::vector<ConvLayer> Layers = resnet18NetworkLayers();

  Measurement NoCache = measure(Layers, nullptr);
  GpSolutionCache Cache;
  Measurement Cold = measure(Layers, &Cache);
  Measurement Cached = measure(Layers, &Cache);

  printRow("no-cache", NoCache);
  printRow("cold", Cold);
  printRow("cached", Cached);
  std::printf("cached speedup over cold: %.2fx\n",
              Cold.Seconds / Cached.Seconds);

  // Durable-state overhead (docs/PERSISTENCE.md): what a clean-exit
  // compaction costs, what a cold-process reload costs, and how a
  // reloaded-from-disk replay compares to the in-memory one.
  const std::string SnapPath = "BENCH_network_cache.snap";
  WallTimer SaveT;
  Status SaveSt = Cache.saveSnapshotFile(SnapPath);
  double SaveS = SaveT.seconds();
  GpSolutionCache Reloaded;
  GpCachePersistStats PS;
  WallTimer LoadT;
  Reloaded.loadFile(SnapPath, PS);
  double LoadS = LoadT.seconds();
  Measurement Replayed = measure(Layers, &Reloaded);
  if (!SaveSt.isOk())
    std::printf("WARNING: snapshot save failed: %s\n",
                SaveSt.toString().c_str());
  std::printf("snapshot: save %zu entries %.3fs, load %.3fs\n",
              Cache.size(), SaveS, LoadS);
  printRow("reloaded", Replayed);
  if (Replayed.Result.Totals.EnergyPj != Cold.Result.Totals.EnergyPj ||
      Replayed.Result.Stats.CacheMisses != 0)
    std::printf("WARNING: disk round trip changed the replay!\n");
  persist::removeFile(SnapPath);

  if (NoCache.Result.Totals.EnergyPj != Cold.Result.Totals.EnergyPj ||
      Cold.Result.Totals.EnergyPj != Cached.Result.Totals.EnergyPj)
    std::printf("WARNING: cache changed the network result!\n");
  if (Cached.Result.Stats.CacheMisses != 0)
    std::printf("WARNING: cached replay missed %llu times!\n",
                static_cast<unsigned long long>(
                    Cached.Result.Stats.CacheMisses));

  writeJson("BENCH_network.json", NoCache, Cold, Cached);
  std::printf("\nwrote BENCH_network.json\n");
  return 0;
}
