//===- ir/Mapping.cpp - Multi-level tiled mapping -------------------------===//

#include "ir/Mapping.h"

#include <numeric>
#include <sstream>

using namespace thistle;

std::vector<std::int64_t> Mapping::registerTileExtents() const {
  std::vector<std::int64_t> Out(Factors.size());
  for (std::size_t I = 0; I < Factors.size(); ++I)
    Out[I] = factor(I, TileLevel::Register);
  return Out;
}

std::vector<std::int64_t> Mapping::peTileExtents() const {
  std::vector<std::int64_t> Out(Factors.size());
  for (std::size_t I = 0; I < Factors.size(); ++I)
    Out[I] = factor(I, TileLevel::PeTemporal) * factor(I, TileLevel::Register);
  return Out;
}

std::vector<std::int64_t> Mapping::sramTileExtents() const {
  std::vector<std::int64_t> Out(Factors.size());
  for (std::size_t I = 0; I < Factors.size(); ++I)
    Out[I] = factor(I, TileLevel::Spatial) *
             factor(I, TileLevel::PeTemporal) *
             factor(I, TileLevel::Register);
  return Out;
}

std::int64_t Mapping::numPEsUsed() const {
  std::int64_t P = 1;
  for (std::size_t I = 0; I < Factors.size(); ++I)
    P *= factor(I, TileLevel::Spatial);
  return P;
}

std::string Mapping::validate(const Problem &Prob) const {
  std::ostringstream Err;
  if (Factors.size() != Prob.numIterators()) {
    Err << "mapping has " << Factors.size() << " iterators but problem has "
        << Prob.numIterators();
    return Err.str();
  }
  for (unsigned I = 0; I < Factors.size(); ++I) {
    std::int64_t Product = 1;
    for (unsigned L = 0; L < NumTileLevels; ++L) {
      if (Factors[I][L] < 1) {
        Err << "iterator " << Prob.iterators()[I].Name << " has factor "
            << Factors[I][L] << " < 1 at level " << L;
        return Err.str();
      }
      Product *= Factors[I][L];
    }
    if (Product != Prob.iterators()[I].Extent) {
      Err << "iterator " << Prob.iterators()[I].Name << " factors multiply to "
          << Product << ", expected extent " << Prob.iterators()[I].Extent;
      return Err.str();
    }
  }
  auto checkPerm = [&](const std::vector<unsigned> &Perm,
                       const char *What) -> bool {
    if (Perm.size() != Prob.numIterators()) {
      Err << What << " permutation has wrong arity";
      return false;
    }
    std::vector<bool> Seen(Prob.numIterators(), false);
    for (unsigned P : Perm) {
      if (P >= Prob.numIterators() || Seen[P]) {
        Err << What << " permutation is not a permutation";
        return false;
      }
      Seen[P] = true;
    }
    return true;
  };
  if (!checkPerm(DramPerm, "DRAM-level"))
    return Err.str();
  if (!checkPerm(PePerm, "PE-level"))
    return Err.str();
  return std::string();
}

std::string Mapping::toString(const Problem &Prob) const {
  std::ostringstream OS;
  auto printLevel = [&](const char *Label, TileLevel Level,
                        const std::vector<unsigned> *Perm) {
    OS << "  " << Label << ":";
    bool Any = false;
    auto printFactor = [&](unsigned I) {
      if (factor(I, Level) == 1)
        return;
      OS << " " << Prob.iterators()[I].Name << "=" << factor(I, Level);
      Any = true;
    };
    if (Perm) {
      for (unsigned I : *Perm)
        printFactor(I);
    } else {
      for (unsigned I = 0; I < Factors.size(); ++I)
        printFactor(I);
    }
    if (!Any)
      OS << " (none)";
    if (Perm) {
      OS << "  perm=<";
      for (std::size_t Pos = 0; Pos < Perm->size(); ++Pos)
        OS << (Pos ? "," : "") << Prob.iterators()[(*Perm)[Pos]].Name;
      OS << ">";
    }
    OS << "\n";
  };
  printLevel("DRAM temporal", TileLevel::DramTemporal, &DramPerm);
  printLevel("spatial      ", TileLevel::Spatial, nullptr);
  printLevel("PE temporal  ", TileLevel::PeTemporal, &PePerm);
  printLevel("register tile", TileLevel::Register, nullptr);
  return OS.str();
}

Mapping Mapping::untiled(const Problem &Prob) {
  Mapping M;
  M.Factors.resize(Prob.numIterators());
  for (unsigned I = 0; I < Prob.numIterators(); ++I) {
    M.Factors[I] = {1, 1, 1, 1};
    M.factor(I, TileLevel::Register) = Prob.iterators()[I].Extent;
  }
  M.DramPerm.resize(Prob.numIterators());
  std::iota(M.DramPerm.begin(), M.DramPerm.end(), 0u);
  M.PePerm = M.DramPerm;
  return M;
}
