//===- expr/Monomial.cpp - Monomials over positive variables --------------===//

#include "expr/Monomial.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

using namespace thistle;

Monomial Monomial::variable(VarId Var, double Exp, double Coeff) {
  Monomial M(Coeff);
  if (Exp != 0.0)
    M.Exps.push_back({Var, Exp});
  return M;
}

double Monomial::exponentOf(VarId Var) const {
  for (const Term &T : Exps)
    if (T.Var == Var)
      return T.Exp;
  return 0.0;
}

void Monomial::addExponent(VarId Var, double Exp) {
  if (Exp == 0.0)
    return;
  auto It = std::lower_bound(
      Exps.begin(), Exps.end(), Var,
      [](const Term &T, VarId V) { return T.Var < V; });
  if (It != Exps.end() && It->Var == Var) {
    It->Exp += Exp;
    if (It->Exp == 0.0)
      Exps.erase(It);
    return;
  }
  Exps.insert(It, {Var, Exp});
}

Monomial Monomial::operator*(const Monomial &Other) const {
  Monomial Out = *this;
  Out.Coeff *= Other.Coeff;
  for (const Term &T : Other.Exps)
    Out.addExponent(T.Var, T.Exp);
  return Out;
}

Monomial Monomial::scaled(double Scale) const {
  Monomial Out = *this;
  Out.Coeff *= Scale;
  return Out;
}

Monomial Monomial::pow(double Power) const {
  assert((Coeff > 0.0 || Power == std::round(Power)) &&
         "non-integer power of a non-positive coefficient");
  Monomial Out(std::pow(Coeff, Power));
  for (const Term &T : Exps)
    Out.Exps.push_back({T.Var, T.Exp * Power});
  // Zero power collapses every exponent.
  if (Power == 0.0)
    Out.Exps.clear();
  return Out;
}

Monomial Monomial::substituted(VarId Var, const Monomial &Repl) const {
  double E = exponentOf(Var);
  if (E == 0.0)
    return *this;
  Monomial Out = *this;
  Out.addExponent(Var, -E); // Remove the variable entirely...
  return Out * Repl.pow(E); // ...and splice in Repl^E.
}

double Monomial::evaluate(const Assignment &Values) const {
  double V = Coeff;
  for (const Term &T : Exps) {
    assert(T.Var < Values.size() && "assignment is missing a variable");
    assert(Values[T.Var] > 0.0 && "GP variables must be positive");
    V *= std::pow(Values[T.Var], T.Exp);
  }
  return V;
}

bool Monomial::variablesLessThan(const Monomial &Other) const {
  return std::lexicographical_compare(
      Exps.begin(), Exps.end(), Other.Exps.begin(), Other.Exps.end(),
      [](const Term &A, const Term &B) {
        if (A.Var != B.Var)
          return A.Var < B.Var;
        return A.Exp < B.Exp;
      });
}

std::string Monomial::toString(const VarTable &Table) const {
  std::ostringstream OS;
  bool NeedCoeff = Exps.empty() || Coeff != 1.0;
  if (NeedCoeff) {
    // Print integral coefficients without a decimal point.
    if (Coeff == std::round(Coeff) && std::abs(Coeff) < 1e15)
      OS << static_cast<long long>(Coeff);
    else
      OS << Coeff;
  }
  bool First = !NeedCoeff;
  for (const Term &T : Exps) {
    if (!First)
      OS << "*";
    First = false;
    OS << Table.nameOf(T.Var);
    if (T.Exp != 1.0) {
      OS << "^";
      if (T.Exp == std::round(T.Exp))
        OS << static_cast<long long>(T.Exp);
      else
        OS << T.Exp;
    }
  }
  return OS.str();
}
