//===- tests/IrTest.cpp - ir/ unit tests ----------------------------------===//

#include "ir/Builders.h"
#include "ir/Mapping.h"
#include "ir/Problem.h"

#include <gtest/gtest.h>

using namespace thistle;

TEST(ConvLayer, OutputSizesSamePadding) {
  ConvLayer L;
  L.Hin = 224;
  L.Win = 224;
  L.R = 7;
  L.S = 7;
  L.StrideX = 2;
  L.StrideY = 2;
  EXPECT_EQ(L.outH(), 112);
  EXPECT_EQ(L.outW(), 112);

  L.StrideX = L.StrideY = 1;
  EXPECT_EQ(L.outH(), 224);
}

TEST(ConvLayer, MacCount) {
  ConvLayer L;
  L.N = 1;
  L.K = 64;
  L.C = 3;
  L.Hin = 224;
  L.Win = 224;
  L.R = 7;
  L.S = 7;
  L.StrideX = L.StrideY = 2;
  EXPECT_EQ(L.numMacs(), 1LL * 64 * 3 * 7 * 7 * 112 * 112);
}

TEST(ConvProblem, StructureMatchesListing1) {
  ConvLayer L;
  L.K = 8;
  L.C = 4;
  L.Hin = 10;
  L.Win = 12;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  ASSERT_EQ(P.numIterators(), 7u);
  EXPECT_EQ(P.iterators()[P.iteratorIndex("k")].Extent, 8);
  EXPECT_EQ(P.iterators()[P.iteratorIndex("h")].Extent, 10);
  EXPECT_EQ(P.iterators()[P.iteratorIndex("w")].Extent, 12);

  ASSERT_EQ(P.tensors().size(), 3u);
  const Tensor &Out = P.tensors()[0];
  const Tensor &In = P.tensors()[1];
  const Tensor &Ker = P.tensors()[2];
  EXPECT_TRUE(Out.ReadWrite);
  EXPECT_FALSE(In.ReadWrite);
  EXPECT_FALSE(Ker.ReadWrite);

  unsigned H = P.iteratorIndex("h"), R = P.iteratorIndex("r");
  unsigned C = P.iteratorIndex("c"), K = P.iteratorIndex("k");
  EXPECT_TRUE(In.usesIter(H));
  EXPECT_TRUE(In.usesIter(R));
  EXPECT_TRUE(In.usesIter(C));
  EXPECT_FALSE(In.usesIter(K));
  EXPECT_TRUE(Out.usesIter(K));
  EXPECT_FALSE(Out.usesIter(C));
  EXPECT_FALSE(Ker.usesIter(H));

  EXPECT_EQ(P.numOps(), 8LL * 4 * 3 * 3 * 10 * 12);
}

TEST(ConvProblem, InputFootprintUsesHalo) {
  ConvLayer L;
  L.K = 1;
  L.C = 2;
  L.Hin = 8;
  L.Win = 8;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  const Tensor &In = P.tensors()[1];
  // Tile of 4x4 output points with full 3x3 kernel and both channels:
  // footprint = 2 * (4+3-1) * (4+3-1) = 72.
  std::vector<std::int64_t> Tile(7, 1);
  Tile[P.iteratorIndex("c")] = 2;
  Tile[P.iteratorIndex("r")] = 3;
  Tile[P.iteratorIndex("s")] = 3;
  Tile[P.iteratorIndex("h")] = 4;
  Tile[P.iteratorIndex("w")] = 4;
  EXPECT_EQ(In.footprintWords(Tile), 2 * 6 * 6);
}

TEST(ConvProblem, StridedFootprint) {
  ConvLayer L;
  L.K = 1;
  L.C = 1;
  L.Hin = 16;
  L.Win = 16;
  L.R = 3;
  L.S = 3;
  L.StrideX = L.StrideY = 2;
  Problem P = makeConvProblem(L);
  const Tensor &In = P.tensors()[1];
  // 4x4 output tile at stride 2 with a 3x3 kernel:
  // extent = 2*(4-1) + 1*(3-1) + 1 = 9 per spatial dim.
  std::vector<std::int64_t> Tile(7, 1);
  Tile[P.iteratorIndex("r")] = 3;
  Tile[P.iteratorIndex("s")] = 3;
  Tile[P.iteratorIndex("h")] = 4;
  Tile[P.iteratorIndex("w")] = 4;
  EXPECT_EQ(In.footprintWords(Tile), 9 * 9);
}

TEST(MatmulProblem, Structure) {
  Problem P = makeMatmulProblem(16, 32, 64);
  ASSERT_EQ(P.numIterators(), 3u);
  EXPECT_EQ(P.numOps(), 16LL * 32 * 64);
  const Tensor &C = P.tensors()[0];
  EXPECT_TRUE(C.ReadWrite);
  EXPECT_FALSE(C.usesIter(P.iteratorIndex("k")));
  const Tensor &A = P.tensors()[1];
  EXPECT_TRUE(A.usesIter(P.iteratorIndex("i")));
  EXPECT_TRUE(A.usesIter(P.iteratorIndex("k")));
  EXPECT_FALSE(A.usesIter(P.iteratorIndex("j")));
}

TEST(Mapping, UntiledValidates) {
  Problem P = makeMatmulProblem(4, 6, 8);
  Mapping M = Mapping::untiled(P);
  EXPECT_TRUE(M.validate(P).empty());
  EXPECT_EQ(M.numPEsUsed(), 1);
  EXPECT_EQ(M.registerTileExtents(), (std::vector<std::int64_t>{4, 6, 8}));
}

TEST(Mapping, TileExtentProducts) {
  Problem P = makeMatmulProblem(8, 8, 8);
  Mapping M = Mapping::untiled(P);
  for (unsigned I = 0; I < 3; ++I) {
    M.factor(I, TileLevel::Register) = 2;
    M.factor(I, TileLevel::PeTemporal) = 2;
    M.factor(I, TileLevel::Spatial) = 2;
    M.factor(I, TileLevel::DramTemporal) = 1;
  }
  EXPECT_TRUE(M.validate(P).empty());
  EXPECT_EQ(M.registerTileExtents(), (std::vector<std::int64_t>{2, 2, 2}));
  EXPECT_EQ(M.peTileExtents(), (std::vector<std::int64_t>{4, 4, 4}));
  EXPECT_EQ(M.sramTileExtents(), (std::vector<std::int64_t>{8, 8, 8}));
  EXPECT_EQ(M.numPEsUsed(), 8);
}

TEST(Mapping, ValidateCatchesBadFactorProduct) {
  Problem P = makeMatmulProblem(4, 4, 4);
  Mapping M = Mapping::untiled(P);
  M.factor(0, TileLevel::Register) = 3; // 3 does not divide into 4.
  EXPECT_FALSE(M.validate(P).empty());
}

TEST(Mapping, ValidateCatchesBadPermutation) {
  Problem P = makeMatmulProblem(4, 4, 4);
  Mapping M = Mapping::untiled(P);
  M.DramPerm = {0, 0, 1};
  EXPECT_FALSE(M.validate(P).empty());
  M.DramPerm = {0, 1};
  EXPECT_FALSE(M.validate(P).empty());
}
