#!/usr/bin/env python3
"""Validate a thistle-opt --trace-json run report against the schema.

The schema (thistle-run-report/1) is pinned in docs/OBSERVABILITY.md.
Stdlib only; exits 0 when the report validates, 1 with a list of
violations otherwise.

Usage: check_run_report.py [--canonical] report.json

With --canonical the report is validated and then printed to stdout in
a canonical form with the volatile fields (timings, trace, metrics,
cache traffic, persistence/shard accounting) removed — two runs that
computed the same result canonicalize to identical bytes, which is how
the resume/shard drivers compare a resumed or merged run against an
uninterrupted one.
"""

import json
import sys

SCHEMA = "thistle-run-report/1"

TOP_FIELDS = {
    "schema": str,
    "tool": str,
    "workload": str,
    "mode": str,
    "objective": str,
    "hierarchy": str,
    "threads": int,
    "wall_seconds": (int, float),
    "exit_code": int,
    "result": dict,
    "evaluator": dict,
    # "sweep", "network", "persistence" and "shards" are dict or the
    # literal false; checked separately.
    "metrics": dict,
    "trace": dict,
}

RESULT_FIELDS = {
    "found": bool,
    "energy_pj": (int, float, type(None)),
    "energy_per_mac_pj": (int, float, type(None)),
    "cycles": (int, float, type(None)),
    "mac_ipc": (int, float, type(None)),
    "edp_pj_cycles": (int, float, type(None)),
}

EVALUATOR_FIELDS = {
    "backend": str,
    "cross_check": bool,
    "evals": int,
    "divergent_evals": int,
    "counters_compared": int,
    "counter_mismatches": int,
    "max_abs_delta": (int, float),
    "max_rel_delta": (int, float),
    "samples": list,
}

EVALUATOR_SAMPLE_FIELDS = {
    "counter": str,
    "primary": int,
    "reference": int,
}

# The in-tree backend spellings plus the cross-check mode; a report
# naming anything else either predates a backend rename or was emitted
# by a build carrying unreviewed registry entries.
EVALUATOR_BACKENDS = {"nest", "maestro", "both"}

SWEEP_FIELDS = {
    "task_noun": str,
    "tasks": int,
    "solved": int,
    "retried": int,
    "degraded": int,
    "infeasible": int,
    "failed": int,
    "skipped": int,
    "skipped_by_policy": int,
    "deadline_expired": bool,
    "clean": bool,
    "incidents": list,
}

NETWORK_FIELDS = {
    "layers_total": int,
    "layers_found": int,
    "unique_shapes": int,
    "cache_enabled": bool,
    "cache_hits": int,
    "cache_misses": int,
    "cache_warm_starts": int,
    "arch_candidates": int,
    "summed_objective": (int, float, type(None)),
    "totals": dict,
    "layers": list,
}

NETWORK_TOTALS_FIELDS = {
    "energy_pj": (int, float, type(None)),
    "cycles": (int, float, type(None)),
    "edp_pj_cycles": (int, float, type(None)),
    "energy_per_mac_pj": (int, float, type(None)),
    "macs": int,
}

NETWORK_LAYER_FIELDS = {
    "name": str,
    "shape_index": int,
    "multiplicity": int,
    "deduplicated": bool,
    "found": bool,
    "energy_pj": (int, float, type(None)),
    "cycles": (int, float, type(None)),
}

PERSISTENCE_FIELDS = {
    "directory": str,
    "capacity": int,
    "loaded_files": int,
    "loaded_entries": int,
    "append_failures": int,
    "evictions": int,
    "data_loss_detected": int,
    "problems": list,
    "snapshot_written": bool,
}

SHARDS_FIELDS = {
    "index": int,
    "count": int,
    "merge": bool,
}

INCIDENT_FIELDS = {
    "index": int,
    "a": int,
    "b": int,
    "outcome": str,
    "attempts": int,
    "detail": str,
}

SPAN_FIELDS = {
    "name": str,
    "epoch": int,
    "index": int,
    "depth": int,
    "start_ns": int,
    "duration_ns": int,
    "detail": str,
}

OUTCOMES = {"solved", "degraded", "infeasible", "failed", "skipped"}


def check_fields(obj, spec, where, errors):
    for name, types in spec.items():
        if name not in obj:
            errors.append(f"{where}: missing field '{name}'")
        elif not isinstance(obj[name], types):
            errors.append(
                f"{where}.{name}: expected {types}, got "
                f"{type(obj[name]).__name__}"
            )


def validate(report):
    errors = []
    check_fields(report, TOP_FIELDS, "$", errors)
    if report.get("schema") != SCHEMA:
        errors.append(
            f"$.schema: expected '{SCHEMA}', got {report.get('schema')!r}"
        )
    if report.get("exit_code") not in (0, 1, 2, 3):
        errors.append(f"$.exit_code: not a documented code: "
                      f"{report.get('exit_code')!r}")

    result = report.get("result")
    if isinstance(result, dict):
        check_fields(result, RESULT_FIELDS, "$.result", errors)

    evaluator = report.get("evaluator")
    if isinstance(evaluator, dict):
        check_fields(evaluator, EVALUATOR_FIELDS, "$.evaluator", errors)
        backend = evaluator.get("backend")
        if isinstance(backend, str) and backend not in EVALUATOR_BACKENDS:
            errors.append(
                f"$.evaluator.backend: unknown backend {backend!r}"
            )
        if evaluator.get("cross_check") != (backend == "both"):
            errors.append(
                "$.evaluator.cross_check: inconsistent with backend"
            )
        if isinstance(evaluator.get("divergent_evals"), int) and \
                isinstance(evaluator.get("evals"), int) and \
                evaluator["divergent_evals"] > evaluator["evals"]:
            errors.append("$.evaluator.divergent_evals: exceeds evals")
        if isinstance(evaluator.get("counter_mismatches"), int) and \
                isinstance(evaluator.get("counters_compared"), int) and \
                evaluator["counter_mismatches"] > \
                evaluator["counters_compared"]:
            errors.append(
                "$.evaluator.counter_mismatches: exceeds counters_compared"
            )
        if evaluator.get("counter_mismatches") == 0 and \
                evaluator.get("max_abs_delta") not in (0, 0.0, None):
            errors.append(
                "$.evaluator.max_abs_delta: nonzero without mismatches"
            )
        samples = evaluator.get("samples")
        if isinstance(samples, list):
            for i, sample in enumerate(samples):
                where = f"$.evaluator.samples[{i}]"
                if not isinstance(sample, dict):
                    errors.append(f"{where}: not an object")
                    continue
                check_fields(sample, EVALUATOR_SAMPLE_FIELDS, where,
                             errors)

    sweep = report.get("sweep")
    if sweep is False:
        pass  # No sweep ran (validation failure before fan-out).
    elif isinstance(sweep, dict):
        check_fields(sweep, SWEEP_FIELDS, "$.sweep", errors)
        if isinstance(sweep.get("incidents"), list):
            for i, inc in enumerate(sweep["incidents"]):
                where = f"$.sweep.incidents[{i}]"
                if not isinstance(inc, dict):
                    errors.append(f"{where}: not an object")
                    continue
                check_fields(inc, INCIDENT_FIELDS, where, errors)
                if inc.get("outcome") not in OUTCOMES:
                    errors.append(
                        f"{where}.outcome: unknown outcome "
                        f"{inc.get('outcome')!r}"
                    )
        counts = [sweep.get(k) for k in
                  ("solved", "degraded", "infeasible", "failed", "skipped")]
        if all(isinstance(c, int) for c in counts) and \
                isinstance(sweep.get("tasks"), int):
            if sum(counts) != sweep["tasks"]:
                errors.append("$.sweep: outcome counts do not sum to tasks")
        if isinstance(sweep.get("skipped_by_policy"), int) and \
                isinstance(sweep.get("skipped"), int):
            if sweep["skipped_by_policy"] > sweep["skipped"]:
                errors.append(
                    "$.sweep.skipped_by_policy: exceeds skipped")
    else:
        errors.append("$.sweep: expected object or false")

    network = report.get("network")
    if network is False:
        pass  # Not a --network run.
    elif isinstance(network, dict):
        check_fields(network, NETWORK_FIELDS, "$.network", errors)
        if isinstance(network.get("layers_found"), int) and \
                isinstance(network.get("layers_total"), int) and \
                network["layers_found"] > network["layers_total"]:
            errors.append("$.network.layers_found: exceeds layers_total")
        if isinstance(network.get("unique_shapes"), int) and \
                isinstance(network.get("layers_total"), int) and \
                network["unique_shapes"] > network["layers_total"]:
            errors.append("$.network.unique_shapes: exceeds layers_total")
        totals = network.get("totals")
        if isinstance(totals, dict):
            check_fields(totals, NETWORK_TOTALS_FIELDS,
                         "$.network.totals", errors)
        layers = network.get("layers")
        if isinstance(layers, list):
            if isinstance(network.get("layers_total"), int) and \
                    len(layers) != network["layers_total"]:
                errors.append(
                    "$.network.layers: row count != layers_total")
            for i, layer in enumerate(layers):
                where = f"$.network.layers[{i}]"
                if not isinstance(layer, dict):
                    errors.append(f"{where}: not an object")
                    continue
                check_fields(layer, NETWORK_LAYER_FIELDS, where, errors)
    else:
        errors.append("$.network: expected object or false")

    persistence = report.get("persistence")
    if persistence is False:
        pass  # No cache directory configured.
    elif isinstance(persistence, dict):
        check_fields(persistence, PERSISTENCE_FIELDS, "$.persistence",
                     errors)
        problems = persistence.get("problems")
        if isinstance(problems, list):
            for i, problem in enumerate(problems):
                if not isinstance(problem, str):
                    errors.append(
                        f"$.persistence.problems[{i}]: not a string")
            if isinstance(persistence.get("data_loss_detected"), int) and \
                    persistence["data_loss_detected"] != len(problems):
                errors.append(
                    "$.persistence.data_loss_detected: "
                    "!= len(problems)")
    else:
        errors.append("$.persistence: expected object or false")

    shards = report.get("shards")
    if shards is False:
        pass  # Not a sharded or merging run.
    elif isinstance(shards, dict):
        check_fields(shards, SHARDS_FIELDS, "$.shards", errors)
        if isinstance(shards.get("index"), int) and \
                isinstance(shards.get("count"), int) and \
                not 1 <= shards["index"] <= shards["count"]:
            errors.append("$.shards.index: outside 1..count")
        if persistence is False:
            errors.append(
                "$.shards: sharded run without a persistence section")
    else:
        errors.append("$.shards: expected object or false")

    metrics = report.get("metrics")
    if isinstance(metrics, dict):
        counters = metrics.get("counters")
        if not isinstance(counters, dict):
            errors.append("$.metrics.counters: expected object")
        else:
            for name, value in counters.items():
                if not isinstance(value, int) or value < 0:
                    errors.append(
                        f"$.metrics.counters.{name}: not a non-negative int"
                    )
        stats = metrics.get("stats")
        if not isinstance(stats, dict):
            errors.append("$.metrics.stats: expected object")
        else:
            for name, stat in stats.items():
                where = f"$.metrics.stats.{name}"
                if not isinstance(stat, dict):
                    errors.append(f"{where}: expected object")
                    continue
                for field in ("count", "sum", "min", "max", "mean"):
                    if not isinstance(stat.get(field),
                                      (int, float, type(None))):
                        errors.append(f"{where}.{field}: not a number")

    trace = report.get("trace")
    if isinstance(trace, dict):
        if not isinstance(trace.get("dropped_spans"), int):
            errors.append("$.trace.dropped_spans: expected int")
        spans = trace.get("spans")
        if not isinstance(spans, list):
            errors.append("$.trace.spans: expected array")
        else:
            last_key = None
            for i, span in enumerate(spans):
                where = f"$.trace.spans[{i}]"
                if not isinstance(span, dict):
                    errors.append(f"{where}: not an object")
                    continue
                check_fields(span, SPAN_FIELDS, where, errors)
                if isinstance(span.get("index"), int) and \
                        span["index"] < -1:
                    errors.append(f"{where}.index: below -1")
                # Spans are merged in (epoch, index) order; -1 (NoIndex)
                # sorts last within its epoch.
                if isinstance(span.get("epoch"), int) and \
                        isinstance(span.get("index"), int):
                    index = span["index"]
                    key = (span["epoch"],
                           float("inf") if index == -1 else index)
                    if last_key is not None and key < last_key:
                        errors.append(
                            f"{where}: spans out of (epoch, index) order"
                        )
                    last_key = key
    return errors


# Fields that legitimately differ between runs computing the same
# result: timings, the span trace, telemetry counters, cache traffic
# (a resumed run hits where the original missed) and the durable-state
# accounting itself. Everything else — the result, the winner, the
# sweep outcomes, the per-layer rows — must match byte-for-byte.
CANONICAL_DROP_TOP = (
    "wall_seconds", "metrics", "trace", "persistence", "shards",
)
CANONICAL_DROP_NETWORK = (
    "cache_hits", "cache_misses", "cache_warm_starts",
)


def canonicalize(report):
    out = {k: v for k, v in report.items() if k not in CANONICAL_DROP_TOP}
    network = out.get("network")
    if isinstance(network, dict):
        out["network"] = {
            k: v for k, v in network.items()
            if k not in CANONICAL_DROP_NETWORK
        }
    return out


def main(argv):
    args = list(argv[1:])
    canonical = "--canonical" in args
    if canonical:
        args.remove("--canonical")
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    path = args[0]
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {path}: {exc}", file=sys.stderr)
        return 1
    if not isinstance(report, dict):
        print("error: top-level JSON value is not an object",
              file=sys.stderr)
        return 1
    errors = validate(report)
    if errors:
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        print(f"{path}: {len(errors)} schema violation(s)",
              file=sys.stderr)
        return 1
    if canonical:
        print(json.dumps(canonicalize(report), indent=2, sort_keys=True))
    else:
        print(f"{path}: valid {SCHEMA}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
