//===- support/MathUtil.cpp - Integer math helpers ------------------------===//

#include "support/MathUtil.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace thistle;

bool thistle::isPowerOfTwo(std::int64_t X) {
  return X > 0 && (X & (X - 1)) == 0;
}

std::int64_t thistle::nextPowerOfTwo(std::int64_t X) {
  assert(X >= 1 && "nextPowerOfTwo requires a positive argument");
  std::int64_t P = 1;
  while (P < X)
    P <<= 1;
  return P;
}

std::vector<std::int64_t> thistle::divisorsOf(std::int64_t N) {
  assert(N >= 1 && "divisorsOf requires a positive argument");
  std::vector<std::int64_t> Low, High;
  for (std::int64_t D = 1; D * D <= N; ++D) {
    if (N % D != 0)
      continue;
    Low.push_back(D);
    if (D != N / D)
      High.push_back(N / D);
  }
  Low.insert(Low.end(), High.rbegin(), High.rend());
  return Low;
}

std::vector<std::int64_t> thistle::closestDivisors(std::int64_t N,
                                                   double Target,
                                                   unsigned Count) {
  std::vector<std::int64_t> Divs = divisorsOf(N);
  // Sort by distance to the target; prefer the smaller divisor on ties so
  // that capacity constraints are more likely to hold after rounding.
  std::stable_sort(Divs.begin(), Divs.end(),
                   [Target](std::int64_t A, std::int64_t B) {
                     double DA = std::abs(static_cast<double>(A) - Target);
                     double DB = std::abs(static_cast<double>(B) - Target);
                     if (DA != DB)
                       return DA < DB;
                     return A < B;
                   });
  if (Divs.size() > Count)
    Divs.resize(Count);
  std::sort(Divs.begin(), Divs.end());
  return Divs;
}

std::vector<std::int64_t> thistle::closestPowersOfTwo(double Target,
                                                      unsigned Count,
                                                      std::int64_t MinValue) {
  assert(Count >= 1 && "need at least one candidate");
  assert(MinValue >= 1 && "minimum value must be positive");
  double SafeTarget = std::max(Target, static_cast<double>(MinValue));
  double LogTarget = std::log2(SafeTarget);
  int MinExp = 0;
  while ((std::int64_t{1} << MinExp) < MinValue)
    ++MinExp;
  // Rank exponents >= MinExp by log-space distance to the target and keep
  // the Count nearest (the paper's "N closest powers of two").
  std::vector<int> Exps;
  for (int E = MinExp; E < 62; ++E)
    Exps.push_back(E);
  std::stable_sort(Exps.begin(), Exps.end(), [LogTarget](int A, int B) {
    return std::abs(A - LogTarget) < std::abs(B - LogTarget);
  });
  Exps.resize(std::min<std::size_t>(Count, Exps.size()));
  std::sort(Exps.begin(), Exps.end());
  std::vector<std::int64_t> Result;
  for (int E : Exps)
    Result.push_back(std::int64_t{1} << E);
  return Result;
}

std::int64_t thistle::productOf(const std::vector<std::int64_t> &Values) {
  std::int64_t P = 1;
  for (std::int64_t V : Values)
    P *= V;
  return P;
}

void DivisorTable::populate(std::int64_t N) {
  for (std::int64_t D : divisorsOf(N)) {
    auto It = Table.find(D);
    if (It == Table.end())
      Table.emplace(D, divisorsOf(D));
  }
}

const std::vector<std::int64_t> &DivisorTable::of(std::int64_t N) const {
  auto It = Table.find(N);
  assert(It != Table.end() && "value not covered by a populate() call");
  return It->second;
}
