# End-to-end contract of the thistle-serve daemon (docs/SERVING.md):
# answers to a query must be byte-identical whether served cold, hot
# from the in-memory cache, reloaded from the durable snapshot after a
# restart, or raced by identical concurrent clients — and must match
# what a standalone thistle-opt run computes for the same problem.
# Invoked by ctest as:
#   cmake -DSERVE=<thistle-serve> -DQUERY=<thistle-query>
#         -DOPT=<thistle-opt> -DWORK_DIR=<dir>
#         [-DCHECKER=<check_run_report.py> -DPYTHON=<python3>]
#         -P CheckServe.cmake

set(DIR ${WORK_DIR}/serve-cache)
set(PORTFILE ${WORK_DIR}/serve-port.txt)
set(PIDFILE ${WORK_DIR}/serve-pid.txt)
file(REMOVE_RECURSE ${DIR})
file(REMOVE ${PORTFILE} ${PIDFILE})

# The layer and network queries the daemon will be asked to solve, and
# the equivalent standalone thistle-opt invocations they must match.
set(Q_LAYER "{\"schema\":\"thistle-serve/1\",\"id\":1,\"query\":{\"workload\":{\"layer\":[16,8,14,14,3,3]}}}")
set(Q_NET "{\"schema\":\"thistle-serve/1\",\"id\":2,\"query\":{\"workload\":{\"network\":\"resnet18\"}}}")
set(Q_DEADLINE "{\"schema\":\"thistle-serve/1\",\"id\":3,\"query\":{\"workload\":{\"layer\":[16,8,14,14,3,3]},\"deadline_ms\":1}}")

function(wait_for_file PATH WHAT)
  foreach(I RANGE 100)
    if(EXISTS ${PATH})
      return()
    endif()
    execute_process(COMMAND sh -c "sleep 0.1")
  endforeach()
  message(FATAL_ERROR "timed out waiting for ${WHAT} (${PATH})")
endfunction()

function(wait_for_exit WHAT)
  file(READ ${PIDFILE} PID)
  string(STRIP "${PID}" PID)
  foreach(I RANGE 200)
    execute_process(COMMAND sh -c "kill -0 ${PID} 2>/dev/null"
      RESULT_VARIABLE ALIVE)
    if(NOT ALIVE EQUAL 0)
      return()
    endif()
    execute_process(COMMAND sh -c "sleep 0.1")
  endforeach()
  message(FATAL_ERROR "timed out waiting for ${WHAT} to exit (pid ${PID})")
endfunction()

function(start_daemon REPORT LOG)
  file(REMOVE ${PORTFILE} ${PIDFILE})
  execute_process(
    COMMAND sh -c "'${SERVE}' --cache-dir '${DIR}' --threads 2 \
--port-file '${PORTFILE}' --trace-json '${REPORT}' \
> '${LOG}' 2>&1 & echo $! > '${PIDFILE}'"
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR "could not launch thistle-serve ('${CODE}')")
  endif()
  wait_for_file(${PORTFILE} "daemon port file")
endfunction()

# Sends requests with thistle-query, captures the raw response lines in
# OUTFILE. Every response the daemon ever produces is captured in some
# file so the final accounting check can reconcile them against the
# daemon's own run report.
function(run_query OUTFILE)
  execute_process(
    COMMAND ${QUERY} --port-file ${PORTFILE} ${ARGN}
    OUTPUT_FILE ${OUTFILE}
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR "thistle-query exit '${CODE}'\n${ERR}")
  endif()
endfunction()

# Cuts a response at its `server` section — latency, queue depth and
# per-request cache accounting legitimately differ between runs; the
# rest must not.
function(strip_server VAR LINE)
  string(FIND "${LINE}" ",\"server\":" POS REVERSE)
  if(NOT POS EQUAL -1)
    string(SUBSTRING "${LINE}" 0 ${POS} LINE)
    string(APPEND LINE "}")
  endif()
  set(${VAR} "${LINE}" PARENT_SCOPE)
endfunction()

function(first_line VAR PATH)
  file(STRINGS ${PATH} LINES)
  list(GET LINES 0 L)
  set(${VAR} "${L}" PARENT_SCOPE)
endfunction()

# 1. Standalone baselines: what thistle-opt computes for the same
#    problems, with run reports for the report-identity check below.
execute_process(
  COMMAND ${OPT} --layer 16,8,14,14,3,3
          --trace-json ${WORK_DIR}/serve-opt-layer.json
  OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR RESULT_VARIABLE CODE)
if(NOT CODE EQUAL 0)
  message(FATAL_ERROR "layer baseline: expected exit 0, got '${CODE}'\n${ERR}")
endif()
execute_process(
  COMMAND ${OPT} --network resnet18 --threads 2
          --trace-json ${WORK_DIR}/serve-opt-net.json
  OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR RESULT_VARIABLE CODE)
if(NOT CODE EQUAL 0)
  message(FATAL_ERROR
    "network baseline: expected exit 0, got '${CODE}'\n${ERR}")
endif()

# 2. First daemon lifetime: cold solve, hot replay, concurrent race.
start_daemon(${WORK_DIR}/serve-report-1.json ${WORK_DIR}/serve-log-1.txt)

run_query(${WORK_DIR}/serve-r1.jsonl --request ${Q_LAYER})
first_line(COLD ${WORK_DIR}/serve-r1.jsonl)
if(NOT COLD MATCHES "\"status\":\"ok\"")
  message(FATAL_ERROR "cold layer query did not succeed\n${COLD}")
endif()

run_query(${WORK_DIR}/serve-r2.jsonl --request ${Q_LAYER})
first_line(HOT ${WORK_DIR}/serve-r2.jsonl)
strip_server(COLD_CORE "${COLD}")
strip_server(HOT_CORE "${HOT}")
if(NOT COLD_CORE STREQUAL HOT_CORE)
  message(FATAL_ERROR
    "hot replay diverged from the cold solve\n"
    "---- cold ----\n${COLD_CORE}\n---- hot ----\n${HOT_CORE}")
endif()

# Eight identical requests racing on their own connections must
# collapse to one answer — the dedup/batching path cannot change bytes.
set(RACE ${WORK_DIR}/serve-race.jsonl)
file(WRITE ${RACE} "")
foreach(I RANGE 1 8)
  file(APPEND ${RACE} "${Q_LAYER}\n")
endforeach()
run_query(${WORK_DIR}/serve-r3.jsonl --parallel --file ${RACE})
file(STRINGS ${WORK_DIR}/serve-r3.jsonl RACE_LINES)
list(LENGTH RACE_LINES N)
if(NOT N EQUAL 8)
  message(FATAL_ERROR "race: expected 8 responses, got ${N}")
endif()
set(RACE_CORES "")
foreach(L ${RACE_LINES})
  strip_server(CORE "${L}")
  list(APPEND RACE_CORES "${CORE}")
endforeach()
list(REMOVE_DUPLICATES RACE_CORES)
list(LENGTH RACE_CORES UNIQUE)
if(NOT UNIQUE EQUAL 1)
  message(FATAL_ERROR
    "race: ${UNIQUE} distinct answers to identical queries\n${RACE_CORES}")
endif()
list(GET RACE_CORES 0 RACE_CORE)
if(NOT RACE_CORE STREQUAL COLD_CORE)
  message(FATAL_ERROR
    "race: concurrent answer diverged from the cold solve\n"
    "---- cold ----\n${COLD_CORE}\n---- raced ----\n${RACE_CORE}")
endif()

# Network-level query, an expired deadline (must degrade, not crash),
# and the error paths: garbage input and a bad schema tag answer with
# structured invalid-input envelopes while the daemon keeps serving.
run_query(${WORK_DIR}/serve-r4.jsonl --request ${Q_NET})
first_line(NET ${WORK_DIR}/serve-r4.jsonl)
if(NOT NET MATCHES "\"status\":\"ok\"")
  message(FATAL_ERROR "network query did not succeed\n${NET}")
endif()

run_query(${WORK_DIR}/serve-r5.jsonl --request ${Q_DEADLINE})
first_line(DL ${WORK_DIR}/serve-r5.jsonl)
if(NOT DL MATCHES "\"status\":\"(ok|degraded|no-design)\"")
  message(FATAL_ERROR "deadline query neither succeeded nor degraded\n${DL}")
endif()

run_query(${WORK_DIR}/serve-r6.jsonl
  --request "this is not json"
  --request "{\"schema\":\"bogus/9\",\"query\":{}}"
  --request "{\"cmd\":\"ping\"}"
  --request "{\"cmd\":\"stats\"}")
file(STRINGS ${WORK_DIR}/serve-r6.jsonl ERRS)
list(GET ERRS 0 BAD_JSON)
list(GET ERRS 1 BAD_SCHEMA)
list(GET ERRS 2 PONG)
list(GET ERRS 3 STATS)
foreach(RESP IN ITEMS "${BAD_JSON}" "${BAD_SCHEMA}")
  if(NOT RESP MATCHES "\"status\":\"invalid\"" OR
     NOT RESP MATCHES "\"exit_code\":2")
    message(FATAL_ERROR "bad input not rejected as invalid\n${RESP}")
  endif()
endforeach()
if(NOT PONG MATCHES "\"status\":\"ok\"")
  message(FATAL_ERROR "ping failed\n${PONG}")
endif()
if(NOT STATS MATCHES "\"serve\":")
  message(FATAL_ERROR "stats response lacks the serve section\n${STATS}")
endif()

# 3. Clean shutdown over the wire: the daemon acknowledges, compacts
#    its journal into the snapshot, and writes its run report.
run_query(${WORK_DIR}/serve-r7.jsonl --request "{\"cmd\":\"shutdown\"}")
wait_for_exit("daemon (first lifetime)")
wait_for_file(${WORK_DIR}/serve-report-1.json "first daemon run report")
if(NOT EXISTS ${DIR}/gpcache.snap)
  message(FATAL_ERROR "shutdown left no compacted snapshot in ${DIR}")
endif()
if(EXISTS ${DIR}/gpcache.journal)
  message(FATAL_ERROR "journal survived shutdown compaction in ${DIR}")
endif()

# 4. Second daemon lifetime on the same cache directory: the answer now
#    comes from the reloaded snapshot and must still be byte-identical.
start_daemon(${WORK_DIR}/serve-report-2.json ${WORK_DIR}/serve-log-2.txt)
run_query(${WORK_DIR}/serve-p2r1.jsonl --request ${Q_LAYER})
first_line(RELOADED ${WORK_DIR}/serve-p2r1.jsonl)
strip_server(RELOADED_CORE "${RELOADED}")
if(NOT RELOADED_CORE STREQUAL COLD_CORE)
  message(FATAL_ERROR
    "disk-reloaded answer diverged from the cold solve\n"
    "---- cold ----\n${COLD_CORE}\n---- reloaded ----\n${RELOADED_CORE}")
endif()
run_query(${WORK_DIR}/serve-p2r2.jsonl --request "{\"cmd\":\"shutdown\"}")
wait_for_exit("daemon (second lifetime)")
wait_for_file(${WORK_DIR}/serve-report-2.json "second daemon run report")

# 5. Schema-level checks: every captured response is a valid
#    thistle-serve/1 envelope, the embedded reports are byte-identical
#    to the standalone thistle-opt run reports in the shared diff normal
#    form, and the daemon's accounting reconciles with the responses.
if(PYTHON)
  foreach(F serve-r1 serve-r2 serve-r3 serve-r4 serve-r5 serve-r6
            serve-r7 serve-p2r1 serve-p2r2)
    execute_process(
      COMMAND ${PYTHON} ${CHECKER} --serve ${WORK_DIR}/${F}.jsonl
      OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR RESULT_VARIABLE CODE)
    if(NOT CODE EQUAL 0)
      message(FATAL_ERROR "envelope check failed on ${F}:\n${OUT}\n${ERR}")
    endif()
  endforeach()

  function(reports_match RESPONSES BASELINE WHAT)
    execute_process(
      COMMAND ${PYTHON} ${CHECKER} --extract-report ${RESPONSES}
      OUTPUT_VARIABLE SERVED ERROR_VARIABLE ERR RESULT_VARIABLE CODE)
    if(NOT CODE EQUAL 0)
      message(FATAL_ERROR
        "report extraction failed on ${RESPONSES}:\n${ERR}")
    endif()
    execute_process(
      COMMAND ${PYTHON} ${CHECKER} --for-diff ${BASELINE}
      OUTPUT_VARIABLE STANDALONE ERROR_VARIABLE ERR RESULT_VARIABLE CODE)
    if(NOT CODE EQUAL 0)
      message(FATAL_ERROR
        "diff form failed on ${BASELINE}:\n${ERR}")
    endif()
    if(NOT SERVED STREQUAL STANDALONE)
      message(FATAL_ERROR
        "${WHAT}: served report diverged from standalone thistle-opt\n"
        "---- served ----\n${SERVED}\n---- standalone ----\n${STANDALONE}")
    endif()
  endfunction()
  reports_match(${WORK_DIR}/serve-r1.jsonl
    ${WORK_DIR}/serve-opt-layer.json "layer query")
  reports_match(${WORK_DIR}/serve-r4.jsonl
    ${WORK_DIR}/serve-opt-net.json "network query")

  execute_process(
    COMMAND ${PYTHON} ${CHECKER} --serve-consistency
      ${WORK_DIR}/serve-report-1.json
      ${WORK_DIR}/serve-r1.jsonl ${WORK_DIR}/serve-r2.jsonl
      ${WORK_DIR}/serve-r3.jsonl ${WORK_DIR}/serve-r4.jsonl
      ${WORK_DIR}/serve-r5.jsonl ${WORK_DIR}/serve-r6.jsonl
      ${WORK_DIR}/serve-r7.jsonl
    OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR "serve accounting inconsistent:\n${OUT}\n${ERR}")
  endif()
  execute_process(
    COMMAND ${PYTHON} ${CHECKER} --serve-consistency
      ${WORK_DIR}/serve-report-2.json
      ${WORK_DIR}/serve-p2r1.jsonl ${WORK_DIR}/serve-p2r2.jsonl
    OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR
      "second-lifetime accounting inconsistent:\n${OUT}\n${ERR}")
  endif()
endif()
