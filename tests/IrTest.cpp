//===- tests/IrTest.cpp - ir/ unit tests ----------------------------------===//

#include "ir/Builders.h"
#include "ir/Mapping.h"
#include "ir/Problem.h"

#include <gtest/gtest.h>

using namespace thistle;

TEST(ConvLayer, OutputSizesSamePadding) {
  ConvLayer L;
  L.Hin = 224;
  L.Win = 224;
  L.R = 7;
  L.S = 7;
  L.StrideX = 2;
  L.StrideY = 2;
  EXPECT_EQ(L.outH(), 112);
  EXPECT_EQ(L.outW(), 112);

  L.StrideX = L.StrideY = 1;
  EXPECT_EQ(L.outH(), 224);
}

TEST(ConvLayer, MacCount) {
  ConvLayer L;
  L.N = 1;
  L.K = 64;
  L.C = 3;
  L.Hin = 224;
  L.Win = 224;
  L.R = 7;
  L.S = 7;
  L.StrideX = L.StrideY = 2;
  EXPECT_EQ(L.numMacs(), 1LL * 64 * 3 * 7 * 7 * 112 * 112);
}

TEST(ConvProblem, StructureMatchesListing1) {
  ConvLayer L;
  L.K = 8;
  L.C = 4;
  L.Hin = 10;
  L.Win = 12;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  ASSERT_EQ(P.numIterators(), 7u);
  EXPECT_EQ(P.iterators()[P.iteratorIndex("k")].Extent, 8);
  EXPECT_EQ(P.iterators()[P.iteratorIndex("h")].Extent, 10);
  EXPECT_EQ(P.iterators()[P.iteratorIndex("w")].Extent, 12);

  ASSERT_EQ(P.tensors().size(), 3u);
  const Tensor &Out = P.tensors()[0];
  const Tensor &In = P.tensors()[1];
  const Tensor &Ker = P.tensors()[2];
  EXPECT_TRUE(Out.ReadWrite);
  EXPECT_FALSE(In.ReadWrite);
  EXPECT_FALSE(Ker.ReadWrite);

  unsigned H = P.iteratorIndex("h"), R = P.iteratorIndex("r");
  unsigned C = P.iteratorIndex("c"), K = P.iteratorIndex("k");
  EXPECT_TRUE(In.usesIter(H));
  EXPECT_TRUE(In.usesIter(R));
  EXPECT_TRUE(In.usesIter(C));
  EXPECT_FALSE(In.usesIter(K));
  EXPECT_TRUE(Out.usesIter(K));
  EXPECT_FALSE(Out.usesIter(C));
  EXPECT_FALSE(Ker.usesIter(H));

  EXPECT_EQ(P.numOps(), 8LL * 4 * 3 * 3 * 10 * 12);
}

TEST(ConvProblem, InputFootprintUsesHalo) {
  ConvLayer L;
  L.K = 1;
  L.C = 2;
  L.Hin = 8;
  L.Win = 8;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  const Tensor &In = P.tensors()[1];
  // Tile of 4x4 output points with full 3x3 kernel and both channels:
  // footprint = 2 * (4+3-1) * (4+3-1) = 72.
  std::vector<std::int64_t> Tile(7, 1);
  Tile[P.iteratorIndex("c")] = 2;
  Tile[P.iteratorIndex("r")] = 3;
  Tile[P.iteratorIndex("s")] = 3;
  Tile[P.iteratorIndex("h")] = 4;
  Tile[P.iteratorIndex("w")] = 4;
  EXPECT_EQ(In.footprintWords(Tile), 2 * 6 * 6);
}

TEST(ConvProblem, StridedFootprint) {
  ConvLayer L;
  L.K = 1;
  L.C = 1;
  L.Hin = 16;
  L.Win = 16;
  L.R = 3;
  L.S = 3;
  L.StrideX = L.StrideY = 2;
  Problem P = makeConvProblem(L);
  const Tensor &In = P.tensors()[1];
  // 4x4 output tile at stride 2 with a 3x3 kernel:
  // extent = 2*(4-1) + 1*(3-1) + 1 = 9 per spatial dim.
  std::vector<std::int64_t> Tile(7, 1);
  Tile[P.iteratorIndex("r")] = 3;
  Tile[P.iteratorIndex("s")] = 3;
  Tile[P.iteratorIndex("h")] = 4;
  Tile[P.iteratorIndex("w")] = 4;
  EXPECT_EQ(In.footprintWords(Tile), 9 * 9);
}

TEST(ConvLayer, OutputSizesValidPaddingAndTransposed) {
  ConvLayer L;
  L.Hin = L.Win = 14;
  L.R = L.S = 3;
  L.DilationX = L.DilationY = 2;
  L.Padding = ConvPadding::Valid;
  // Dilated 3x3 spans 2*(3-1)+1 = 5 positions: out = 14 - 5 + 1 = 10.
  EXPECT_EQ(L.outH(), 10);
  L.StrideX = 2;
  EXPECT_EQ(L.outH(), (14 - 5) / 2 + 1);

  ConvLayer T;
  T.Hin = T.Win = 4;
  T.R = T.S = 4;
  T.StrideX = T.StrideY = 2;
  T.Transposed = true;
  // Full scatter extent: 2*(4-1) + (4-1) + 1 = 10, padding ignored.
  EXPECT_EQ(T.outH(), 10);
  T.Padding = ConvPadding::Valid;
  EXPECT_EQ(T.outH(), 10);
}

TEST(ConvLayer, ValidateNamesTheBadField) {
  ConvLayer L;
  L.Name = "bad";
  L.K = 8;
  L.C = 8;
  L.StrideX = 0;
  Status S = L.validate();
  ASSERT_FALSE(S.isOk());
  EXPECT_EQ(S.code(), StatusCode::InvalidArgument);
  EXPECT_NE(S.toString().find("StrideX"), std::string::npos);
  EXPECT_NE(S.toString().find("'bad'"), std::string::npos);

  L.StrideX = 1;
  L.Groups = 3;
  EXPECT_NE(L.validate().toString().find("divisible"), std::string::npos);
  L.Groups = 8;
  EXPECT_TRUE(L.validate().isOk());

  // Valid padding needs the dilated kernel to fit.
  ConvLayer V;
  V.Hin = V.Win = 4;
  V.R = V.S = 3;
  V.DilationX = V.DilationY = 2;
  V.Padding = ConvPadding::Valid;
  EXPECT_FALSE(V.validate().isOk());
  V.Hin = V.Win = 5;
  EXPECT_TRUE(V.validate().isOk());
}

TEST(ConvLayer, GroupedMacCountAndClass) {
  ConvLayer L;
  L.K = 64;
  L.C = 64;
  L.Hin = L.Win = 28;
  L.R = L.S = 3;
  EXPECT_STREQ(L.layerClass(), "dense");
  L.Groups = 4;
  EXPECT_STREQ(L.layerClass(), "grouped");
  // Each output channel convolves only C/G input channels.
  EXPECT_EQ(L.numMacs(), 64LL * (64 / 4) * 3 * 3 * 28 * 28);
  L.Groups = 64;
  EXPECT_STREQ(L.layerClass(), "depthwise");
  EXPECT_EQ(L.numMacs(), 64LL * 3 * 3 * 28 * 28);

  ConvLayer D;
  D.DilationX = 2;
  EXPECT_STREQ(D.layerClass(), "dilated");
  ConvLayer T;
  T.Transposed = true;
  T.DilationX = 2;
  EXPECT_STREQ(T.layerClass(), "transposed");
}

TEST(ConvLayer, PaddingTokensRoundTrip) {
  EXPECT_STREQ(paddingName(ConvPadding::Same), "same");
  EXPECT_STREQ(paddingName(ConvPadding::Valid), "valid");
  ASSERT_TRUE(parsePadding("same").hasValue());
  EXPECT_EQ(parsePadding("same").value(), ConvPadding::Same);
  ASSERT_TRUE(parsePadding("valid").hasValue());
  EXPECT_EQ(parsePadding("valid").value(), ConvPadding::Valid);
  EXPECT_FALSE(parsePadding("full").hasValue());
}

TEST(ConvProblem, GroupedStructure) {
  ConvLayer L;
  L.K = 8;
  L.C = 4;
  L.Hin = L.Win = 10;
  L.R = L.S = 3;
  L.Groups = 2;
  Problem P = makeConvProblem(L);
  // The g iterator exists only for grouped layers, with per-group k/c.
  ASSERT_EQ(P.numIterators(), 8u);
  EXPECT_EQ(P.iterators()[P.iteratorIndex("g")].Extent, 2);
  EXPECT_EQ(P.iterators()[P.iteratorIndex("k")].Extent, 4);
  EXPECT_EQ(P.iterators()[P.iteratorIndex("c")].Extent, 2);
  // Out/Ker channel dim is (K/G)*g + k; In channel dim is (C/G)*g + c.
  unsigned G = P.iteratorIndex("g");
  const Tensor &Out = P.tensors()[0];
  const Tensor &In = P.tensors()[1];
  const Tensor &Ker = P.tensors()[2];
  ASSERT_EQ(Out.Dims[1].Terms.size(), 2u);
  EXPECT_EQ(Out.Dims[1].Terms[0].Iter, G);
  EXPECT_EQ(Out.Dims[1].Terms[0].Stride, 4);
  ASSERT_EQ(In.Dims[1].Terms.size(), 2u);
  EXPECT_EQ(In.Dims[1].Terms[0].Stride, 2);
  EXPECT_EQ(Ker.Dims[0].Terms[0].Iter, G);
  // Full-extent footprints recover the untiled tensor sizes.
  std::vector<std::int64_t> Full = P.fullExtents();
  EXPECT_EQ(Out.footprintWords(Full), 1LL * 8 * 10 * 10);
  EXPECT_EQ(In.footprintWords(Full), 1LL * 4 * 12 * 12);
  EXPECT_EQ(Ker.footprintWords(Full), 8LL * 2 * 3 * 3);
  EXPECT_EQ(P.numOps(), L.numMacs());
}

TEST(ConvProblem, TransposedStructure) {
  ConvLayer L;
  L.K = 4;
  L.C = 8;
  L.Hin = L.Win = 6;
  L.R = L.S = 4;
  L.StrideX = L.StrideY = 2;
  L.Transposed = true;
  Problem P = makeConvProblem(L);
  ASSERT_EQ(P.numIterators(), 7u);
  // h/w walk the *input* image; Out carries the strided projection.
  EXPECT_EQ(P.iterators()[P.iteratorIndex("h")].Extent, 6);
  const Tensor &Out = P.tensors()[0];
  const Tensor &In = P.tensors()[1];
  EXPECT_TRUE(Out.ReadWrite);
  ASSERT_EQ(Out.Dims[2].Terms.size(), 2u);
  EXPECT_EQ(Out.Dims[2].Terms[0].Stride, 2);
  EXPECT_EQ(Out.Dims[2].Terms[1].Stride, 1);
  ASSERT_EQ(In.Dims[2].Terms.size(), 1u);
  EXPECT_TRUE(In.usesIter(P.iteratorIndex("h")));
  EXPECT_FALSE(In.usesIter(P.iteratorIndex("r")));
  // The scattered output spans the full transposed extent.
  std::vector<std::int64_t> Full = P.fullExtents();
  EXPECT_EQ(Out.footprintWords(Full), 1LL * 4 * L.outH() * L.outW());
  EXPECT_EQ(L.outH(), 2 * 5 + 3 + 1);
  EXPECT_EQ(P.numOps(), L.numMacs());
}

TEST(ConvProblem, DenseDefaultsBuildTheLegacySevenIteratorNest) {
  // Groups == 1 && !Transposed must reproduce Listing 1 exactly — same
  // iterator order, extents and projections — so every dense result in
  // the repo (and the GP cache keyed on this structure) is unchanged.
  ConvLayer L;
  L.K = 8;
  L.C = 4;
  L.Hin = 10;
  L.Win = 12;
  L.R = 3;
  L.S = 3;
  L.StrideX = L.StrideY = 2;
  Problem P = makeConvProblem(L);
  const char *Expected[] = {"n", "k", "c", "r", "s", "h", "w"};
  ASSERT_EQ(P.numIterators(), 7u);
  for (unsigned I = 0; I < 7; ++I)
    EXPECT_EQ(P.iterators()[I].Name, Expected[I]);
  for (const Tensor &T : P.tensors())
    for (const DimRef &D : T.Dims)
      EXPECT_LE(D.Terms.size(), 2u);
  const Tensor &Out = P.tensors()[0];
  ASSERT_EQ(Out.Dims[1].Terms.size(), 1u);
  EXPECT_EQ(Out.Dims[1].Terms[0].Iter, P.iteratorIndex("k"));
  EXPECT_EQ(Out.Dims[1].Terms[0].Stride, 1);
}

TEST(MatmulProblem, Structure) {
  Problem P = makeMatmulProblem(16, 32, 64);
  ASSERT_EQ(P.numIterators(), 3u);
  EXPECT_EQ(P.numOps(), 16LL * 32 * 64);
  const Tensor &C = P.tensors()[0];
  EXPECT_TRUE(C.ReadWrite);
  EXPECT_FALSE(C.usesIter(P.iteratorIndex("k")));
  const Tensor &A = P.tensors()[1];
  EXPECT_TRUE(A.usesIter(P.iteratorIndex("i")));
  EXPECT_TRUE(A.usesIter(P.iteratorIndex("k")));
  EXPECT_FALSE(A.usesIter(P.iteratorIndex("j")));
}

TEST(Mapping, UntiledValidates) {
  Problem P = makeMatmulProblem(4, 6, 8);
  Mapping M = Mapping::untiled(P);
  EXPECT_TRUE(M.validate(P).empty());
  EXPECT_EQ(M.numPEsUsed(), 1);
  EXPECT_EQ(M.registerTileExtents(), (std::vector<std::int64_t>{4, 6, 8}));
}

TEST(Mapping, TileExtentProducts) {
  Problem P = makeMatmulProblem(8, 8, 8);
  Mapping M = Mapping::untiled(P);
  for (unsigned I = 0; I < 3; ++I) {
    M.factor(I, TileLevel::Register) = 2;
    M.factor(I, TileLevel::PeTemporal) = 2;
    M.factor(I, TileLevel::Spatial) = 2;
    M.factor(I, TileLevel::DramTemporal) = 1;
  }
  EXPECT_TRUE(M.validate(P).empty());
  EXPECT_EQ(M.registerTileExtents(), (std::vector<std::int64_t>{2, 2, 2}));
  EXPECT_EQ(M.peTileExtents(), (std::vector<std::int64_t>{4, 4, 4}));
  EXPECT_EQ(M.sramTileExtents(), (std::vector<std::int64_t>{8, 8, 8}));
  EXPECT_EQ(M.numPEsUsed(), 8);
}

TEST(Mapping, ValidateCatchesBadFactorProduct) {
  Problem P = makeMatmulProblem(4, 4, 4);
  Mapping M = Mapping::untiled(P);
  M.factor(0, TileLevel::Register) = 3; // 3 does not divide into 4.
  EXPECT_FALSE(M.validate(P).empty());
}

TEST(Mapping, ValidateCatchesBadPermutation) {
  Problem P = makeMatmulProblem(4, 4, 4);
  Mapping M = Mapping::untiled(P);
  M.DramPerm = {0, 0, 1};
  EXPECT_FALSE(M.validate(P).empty());
  M.DramPerm = {0, 1};
  EXPECT_FALSE(M.validate(P).empty());
}
