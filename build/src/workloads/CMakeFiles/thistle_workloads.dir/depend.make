# Empty dependencies file for thistle_workloads.
# This may be replaced when dependencies are built.
