# Empty dependencies file for thistle_expr.
# This may be replaced when dependencies are built.
