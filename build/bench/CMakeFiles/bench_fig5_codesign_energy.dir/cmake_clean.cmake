file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_codesign_energy.dir/bench_fig5_codesign_energy.cpp.o"
  "CMakeFiles/bench_fig5_codesign_energy.dir/bench_fig5_codesign_energy.cpp.o.d"
  "bench_fig5_codesign_energy"
  "bench_fig5_codesign_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_codesign_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
