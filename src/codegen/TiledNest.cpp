//===- codegen/TiledNest.cpp - Tiled loop-nest code generation ------------===//

#include "codegen/TiledNest.h"

#include "sim/TileWalk.h"

#include <cassert>
#include <sstream>

using namespace thistle;
using namespace thistle::simdetail;

// Buffer-level convention: BufferLevel == TileLevel::Register denotes the
// per-PE register buffer (registerTileExtents); BufferLevel ==
// TileLevel::Spatial denotes the shared SRAM buffer (sramTileExtents,
// which span the PE grid).

namespace {

/// The loops of one temporal level in permutation order, trip-1 elided.
struct LevelLoop {
  unsigned Iter;
  std::int64_t Trip;
};

std::vector<LevelLoop> levelLoops(const Mapping &Map,
                                  const std::vector<unsigned> &Perm,
                                  TileLevel Level) {
  std::vector<LevelLoop> Loops;
  for (unsigned It : Perm) {
    std::int64_t Trip = Map.factor(It, Level);
    if (Trip > 1)
      Loops.push_back({It, Trip});
  }
  return Loops;
}

/// Builds the nested loop chain of one temporal level with copies placed
/// at their hoist points: tensor T's copy sits just inside its innermost
/// present loop (and above the trailing absent loops), or before the
/// whole chain when no loop touches it.
std::vector<NestNode>
buildLevelChain(const Problem &Prob, const std::vector<LevelLoop> &Loops,
                TileLevel LoopLevel, TileLevel BufferLevel,
                std::vector<NestNode> Inner) {
  // Copy position per tensor: index of the loop *after* which the copy
  // sits (0 = before all loops of this level).
  std::vector<std::size_t> CopyPos(Prob.tensors().size(), 0);
  for (std::size_t TI = 0; TI < Prob.tensors().size(); ++TI)
    for (std::size_t K = Loops.size(); K > 0; --K)
      if (Prob.tensors()[TI].usesIter(Loops[K - 1].Iter)) {
        CopyPos[TI] = K;
        break;
      }

  // Assemble inner-to-outer.
  std::vector<NestNode> Chain = std::move(Inner);
  for (std::size_t Pos = Loops.size() + 1; Pos > 0; --Pos) {
    std::size_t P = Pos - 1;
    std::vector<NestNode> Stmts;
    for (std::size_t TI = 0; TI < Prob.tensors().size(); ++TI)
      if (CopyPos[TI] == P) {
        NestNode Copy;
        Copy.K = NestNode::Kind::CopyIn;
        Copy.TensorIdx = static_cast<unsigned>(TI);
        Copy.BufferLevel = BufferLevel;
        Stmts.push_back(Copy);
      }
    if (P == Loops.size()) {
      for (NestNode &N : Chain)
        Stmts.push_back(std::move(N));
    } else {
      NestNode Loop;
      Loop.K = NestNode::Kind::Loop;
      Loop.Iter = Loops[P].Iter;
      Loop.Trip = Loops[P].Trip;
      Loop.Level = LoopLevel;
      Loop.Body = std::move(Chain);
      Stmts.push_back(std::move(Loop));
    }
    for (std::size_t TI = Prob.tensors().size(); TI > 0; --TI)
      if (CopyPos[TI - 1] == P && Prob.tensors()[TI - 1].ReadWrite) {
        NestNode Copy;
        Copy.K = NestNode::Kind::CopyOut;
        Copy.TensorIdx = static_cast<unsigned>(TI - 1);
        Copy.BufferLevel = BufferLevel;
        Stmts.push_back(Copy);
      }
    Chain = std::move(Stmts);
  }
  return Chain;
}

} // namespace

TiledNest thistle::buildTiledNest(const Problem &Prob, const Mapping &Map) {
  assert(Map.validate(Prob).empty() && "mapping must validate");

  // Innermost: the register-tile compute loops and the MAC.
  std::vector<NestNode> Compute(1);
  Compute[0].K = NestNode::Kind::Compute;
  for (unsigned I = Prob.numIterators(); I > 0; --I) {
    std::int64_t Trip = Map.factor(I - 1, TileLevel::Register);
    if (Trip == 1)
      continue;
    NestNode Loop;
    Loop.K = NestNode::Kind::Loop;
    Loop.Iter = I - 1;
    Loop.Trip = Trip;
    Loop.Level = TileLevel::Register;
    Loop.Body = std::move(Compute);
    Compute.clear();
    Compute.push_back(std::move(Loop));
  }

  // Per-PE temporal loops with register-buffer copies.
  std::vector<NestNode> PeChain = buildLevelChain(
      Prob, levelLoops(Map, Map.PePerm, TileLevel::PeTemporal),
      TileLevel::PeTemporal, TileLevel::Register, std::move(Compute));

  // Spatial forall loops (no copies: the SRAM tile already spans them).
  for (unsigned I = Prob.numIterators(); I > 0; --I) {
    std::int64_t Trip = Map.factor(I - 1, TileLevel::Spatial);
    if (Trip == 1)
      continue;
    NestNode Loop;
    Loop.K = NestNode::Kind::Parallel;
    Loop.Iter = I - 1;
    Loop.Trip = Trip;
    Loop.Level = TileLevel::Spatial;
    Loop.Body = std::move(PeChain);
    PeChain.clear();
    PeChain.push_back(std::move(Loop));
  }

  // DRAM-level loops with SRAM-buffer copies.
  TiledNest Nest;
  Nest.Stmts = buildLevelChain(
      Prob, levelLoops(Map, Map.DramPerm, TileLevel::DramTemporal),
      TileLevel::DramTemporal, TileLevel::Spatial, std::move(PeChain));
  return Nest;
}

namespace {

const char *levelSuffix(TileLevel Level) {
  switch (Level) {
  case TileLevel::DramTemporal:
    return "_s";
  case TileLevel::Spatial:
    return "_p";
  case TileLevel::PeTemporal:
    return "_q";
  case TileLevel::Register:
    return "_r";
  }
  return "";
}

void printNode(const Problem &Prob, const Mapping &Map, const NestNode &N,
               unsigned Indent, std::ostringstream &OS) {
  std::string Pad(2 * Indent, ' ');
  switch (N.K) {
  case NestNode::Kind::Loop:
  case NestNode::Kind::Parallel: {
    std::string Var = Prob.iterators()[N.Iter].Name + levelSuffix(N.Level);
    OS << Pad << (N.K == NestNode::Kind::Parallel ? "forall" : "for")
       << " (" << Var << " = 0; " << Var << " < " << N.Trip << "; ++"
       << Var << ") {\n";
    for (const NestNode &C : N.Body)
      printNode(Prob, Map, C, Indent + 1, OS);
    OS << Pad << "}\n";
    break;
  }
  case NestNode::Kind::CopyIn:
  case NestNode::Kind::CopyOut: {
    const Tensor &T = Prob.tensors()[N.TensorIdx];
    bool Reg = N.BufferLevel == TileLevel::Register;
    std::vector<std::int64_t> Extents =
        Reg ? Map.registerTileExtents() : Map.sramTileExtents();
    std::string Buf = T.Name + (Reg ? "_reg" : "_buf");
    std::string Src = Reg ? T.Name + "_buf" : T.Name;
    if (N.K == NestNode::Kind::CopyIn)
      OS << Pad << Buf << "[...] = " << Src << "[tile];";
    else
      OS << Pad << Src << "[tile] = " << Buf << "[...];";
    OS << "  // " << T.footprintWords(Extents) << " words\n";
    break;
  }
  case NestNode::Kind::Compute: {
    OS << Pad << Prob.tensors()[0].Name << "_reg[..] +=";
    for (std::size_t TI = 1; TI < Prob.tensors().size(); ++TI)
      OS << (TI > 1 ? " *" : "") << " " << Prob.tensors()[TI].Name
         << "_reg[..]";
    OS << ";\n";
    break;
  }
  }
}

} // namespace

std::string thistle::printTiledNest(const Problem &Prob, const Mapping &Map,
                                    const TiledNest &Nest) {
  std::ostringstream OS;
  for (const NestNode &N : Nest.Stmts)
    printNode(Prob, Map, N, 0, OS);
  return OS.str();
}

namespace {

/// Deterministic small-integer fill so floating-point accumulation is
/// exact and order-independent.
double inputValue(unsigned TensorIdx, std::int64_t FlatIndex,
                  std::uint64_t Seed) {
  std::uint64_t H = Seed + 0x9E3779B97F4A7C15ULL * (FlatIndex + 1) +
                    0xBF58476D1CE4E5B9ULL * (TensorIdx + 1);
  H = (H ^ (H >> 30)) * 0xBF58476D1CE4E5B9ULL;
  H = (H ^ (H >> 27)) * 0x94D049BB133111EBULL;
  return static_cast<double>((H >> 32) % 7) - 3.0;
}

/// Dense hull shape of one tensor over the full iteration space.
struct TensorHull {
  std::vector<std::int64_t> DimExtents;
  std::vector<std::int64_t> Strides; // Row-major flattening.
  std::vector<double> Data;

  std::int64_t flatten(const std::vector<std::int64_t> &Coords) const {
    std::int64_t Flat = 0;
    for (std::size_t D = 0; D < Coords.size(); ++D) {
      assert(Coords[D] >= 0 && Coords[D] < DimExtents[D] &&
             "hull coordinate out of range");
      Flat += Coords[D] * Strides[D];
    }
    return Flat;
  }
};

TensorHull makeHull(const Problem &Prob, unsigned TensorIdx,
                    std::uint64_t Seed, bool Fill) {
  const Tensor &T = Prob.tensors()[TensorIdx];
  std::vector<std::int64_t> Full = Prob.fullExtents();
  TensorHull Hull;
  for (const DimRef &D : T.Dims)
    Hull.DimExtents.push_back(D.extentFor(Full));
  Hull.Strides.assign(Hull.DimExtents.size(), 1);
  for (std::size_t D = Hull.DimExtents.size(); D > 1; --D)
    Hull.Strides[D - 2] = Hull.Strides[D - 1] * Hull.DimExtents[D - 1];
  std::int64_t Size = Hull.DimExtents.empty()
                          ? 1
                          : Hull.Strides[0] * Hull.DimExtents[0];
  Hull.Data.assign(Size, 0.0);
  if (Fill)
    for (std::int64_t I = 0; I < Size; ++I)
      Hull.Data[I] = inputValue(TensorIdx, I, Seed);
  return Hull;
}

/// Data-space coordinates of one iteration point for one tensor.
std::vector<std::int64_t>
pointCoords(const Tensor &T, const std::vector<std::int64_t> &IterVal) {
  std::vector<std::int64_t> Coords;
  Coords.reserve(T.Dims.size());
  for (const DimRef &D : T.Dims) {
    std::int64_t C = 0;
    for (const DimRef::Term &Term : D.Terms)
      C += Term.Stride * IterVal[Term.Iter];
    Coords.push_back(C);
  }
  return Coords;
}

/// A live buffer: the box it covers plus its contents.
struct LiveBuffer {
  bool Valid = false;
  Box Covered;
  std::vector<std::int64_t> Strides;
  std::vector<double> Data;

  void allocate(const Box &B) {
    Valid = true;
    Covered = B;
    Strides.assign(B.Ranges.size(), 1);
    for (std::size_t D = B.Ranges.size(); D > 1; --D)
      Strides[D - 2] = Strides[D - 1] * (B.Ranges[D - 1].second -
                                         B.Ranges[D - 1].first + 1);
    Data.assign(static_cast<std::size_t>(boxWords(B)), 0.0);
  }

  bool contains(const std::vector<std::int64_t> &Coords) const {
    if (!Valid)
      return false;
    for (std::size_t D = 0; D < Coords.size(); ++D)
      if (Coords[D] < Covered.Ranges[D].first ||
          Coords[D] > Covered.Ranges[D].second)
        return false;
    return true;
  }

  double &at(const std::vector<std::int64_t> &Coords) {
    std::int64_t Flat = 0;
    for (std::size_t D = 0; D < Coords.size(); ++D)
      Flat += (Coords[D] - Covered.Ranges[D].first) * Strides[D];
    return Data[static_cast<std::size_t>(Flat)];
  }
};

/// Interpreter state.
struct Interp {
  const Problem &Prob;
  const Mapping &Map;
  InterpResult &Result;
  std::vector<TensorHull> Hulls;
  std::vector<LiveBuffer> SramBufs, RegBufs;
  std::vector<std::int64_t> IterVal;
  std::vector<std::int64_t> RegExt, PeExt, SramExt;
  bool Failed = false;

  Interp(const Problem &Prob, const Mapping &Map, InterpResult &Result,
         std::uint64_t Seed)
      : Prob(Prob), Map(Map), Result(Result), IterVal(Prob.numIterators(), 0),
        RegExt(Map.registerTileExtents()), PeExt(Map.peTileExtents()),
        SramExt(Map.sramTileExtents()) {
    for (unsigned TI = 0; TI < Prob.tensors().size(); ++TI)
      Hulls.push_back(makeHull(Prob, TI, Seed,
                               /*Fill=*/!Prob.tensors()[TI].ReadWrite));
    SramBufs.resize(Prob.tensors().size());
    RegBufs.resize(Prob.tensors().size());
  }

  void fail(const std::string &Why) {
    if (!Failed)
      Result.Error = Why;
    Failed = true;
  }

  /// Step size of a loop at \p Level for iterator \p Iter.
  std::int64_t stepOf(TileLevel Level, unsigned Iter) const {
    switch (Level) {
    case TileLevel::Register:
      return 1;
    case TileLevel::PeTemporal:
      return RegExt[Iter];
    case TileLevel::Spatial:
      return PeExt[Iter];
    case TileLevel::DramTemporal:
      return SramExt[Iter];
    }
    return 1;
  }

  void copy(const NestNode &N) {
    if (Failed)
      return;
    const Tensor &T = Prob.tensors()[N.TensorIdx];
    bool Reg = N.BufferLevel == TileLevel::Register;
    const std::vector<std::int64_t> &Ext = Reg ? RegExt : SramExt;
    Box B = tileBox(T, IterVal, Ext);
    LiveBuffer &Dst = Reg ? RegBufs[N.TensorIdx] : SramBufs[N.TensorIdx];
    std::int64_t Words = boxWords(B);
    auto &Traffic = Result.PerTensor[N.TensorIdx];

    if (N.K == NestNode::Kind::CopyIn) {
      Dst.allocate(B);
      (Reg ? Traffic.SramToReg : Traffic.DramToSram) += Words;
    } else {
      if (!Dst.Valid || !(Dst.Covered == B)) {
        fail("copy-out of " + T.Name + " does not match its buffer");
        return;
      }
      (Reg ? Traffic.RegToSram : Traffic.SramToDram) += Words;
    }

    // Element-wise transfer between this buffer and its parent.
    std::vector<std::int64_t> Coords;
    for (const auto &[Lo, Hi] : B.Ranges)
      Coords.push_back(Lo);
    while (true) {
      double *Parent = nullptr;
      if (Reg) {
        LiveBuffer &Sram = SramBufs[N.TensorIdx];
        if (!Sram.contains(Coords)) {
          fail("register tile of " + T.Name + " outside its SRAM buffer");
          return;
        }
        Parent = &Sram.at(Coords);
      } else {
        Parent = &Hulls[N.TensorIdx].Data[static_cast<std::size_t>(
            Hulls[N.TensorIdx].flatten(Coords))];
      }
      if (N.K == NestNode::Kind::CopyIn)
        Dst.at(Coords) = *Parent;
      else
        *Parent = Dst.at(Coords);
      // Advance the coordinate odometer.
      std::size_t D = Coords.size();
      bool More = false;
      while (D > 0) {
        --D;
        if (++Coords[D] <= B.Ranges[D].second) {
          More = true;
          break;
        }
        Coords[D] = B.Ranges[D].first;
      }
      if (!More)
        break;
    }
  }

  void compute() {
    if (Failed)
      return;
    const Tensor &Out = Prob.tensors()[0];
    std::vector<std::int64_t> OutCoords = pointCoords(Out, IterVal);
    if (!RegBufs[0].contains(OutCoords)) {
      fail("compute accesses " + Out.Name + " outside its register tile");
      return;
    }
    double Product = 1.0;
    for (std::size_t TI = 1; TI < Prob.tensors().size(); ++TI) {
      const Tensor &In = Prob.tensors()[TI];
      std::vector<std::int64_t> Coords = pointCoords(In, IterVal);
      if (!RegBufs[TI].contains(Coords)) {
        fail("compute accesses " + In.Name +
             " outside its register tile");
        return;
      }
      Product *= RegBufs[TI].at(Coords);
    }
    RegBufs[0].at(OutCoords) += Product;
  }

  void run(const std::vector<NestNode> &Stmts) {
    for (const NestNode &N : Stmts) {
      if (Failed)
        return;
      switch (N.K) {
      case NestNode::Kind::Loop:
      case NestNode::Kind::Parallel: {
        std::int64_t Step = stepOf(N.Level, N.Iter);
        std::int64_t Saved = IterVal[N.Iter];
        for (std::int64_t I = 0; I < N.Trip && !Failed; ++I) {
          IterVal[N.Iter] = Saved + I * Step;
          run(N.Body);
        }
        IterVal[N.Iter] = Saved;
        break;
      }
      case NestNode::Kind::CopyIn:
      case NestNode::Kind::CopyOut:
        copy(N);
        break;
      case NestNode::Kind::Compute:
        compute();
        break;
      }
    }
  }
};

} // namespace

InterpResult thistle::interpretTiledNest(const Problem &Prob,
                                         const Mapping &Map,
                                         const TiledNest &Nest,
                                         std::uint64_t InputSeed) {
  assert(Prob.tensors()[0].ReadWrite &&
         "the interpreter assumes tensor 0 is the read-write output");
  InterpResult Result;
  Result.PerTensor.resize(Prob.tensors().size());
  Interp I(Prob, Map, Result, InputSeed);
  I.run(Nest.Stmts);
  Result.Ok = !I.Failed;
  Result.Output = std::move(I.Hulls[0].Data);
  return Result;
}

std::vector<double> thistle::referenceContraction(const Problem &Prob,
                                                  std::uint64_t InputSeed) {
  std::vector<TensorHull> Hulls;
  for (unsigned TI = 0; TI < Prob.tensors().size(); ++TI)
    Hulls.push_back(makeHull(Prob, TI, InputSeed,
                             /*Fill=*/!Prob.tensors()[TI].ReadWrite));

  std::vector<std::int64_t> Extents = Prob.fullExtents();
  std::vector<std::int64_t> Point(Prob.numIterators(), 0);
  while (true) {
    double Product = 1.0;
    for (std::size_t TI = 1; TI < Prob.tensors().size(); ++TI) {
      const Tensor &T = Prob.tensors()[TI];
      Product *= Hulls[TI].Data[static_cast<std::size_t>(
          Hulls[TI].flatten(pointCoords(T, Point)))];
    }
    Hulls[0].Data[static_cast<std::size_t>(
        Hulls[0].flatten(pointCoords(Prob.tensors()[0], Point)))] += Product;

    std::size_t D = Prob.numIterators();
    bool More = false;
    while (D > 0) {
      --D;
      if (++Point[D] < Extents[D]) {
        More = true;
        break;
      }
      Point[D] = 0;
    }
    if (!More)
      break;
  }
  return Hulls[0].Data;
}
