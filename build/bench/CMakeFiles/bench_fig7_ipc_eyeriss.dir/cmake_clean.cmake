file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_ipc_eyeriss.dir/bench_fig7_ipc_eyeriss.cpp.o"
  "CMakeFiles/bench_fig7_ipc_eyeriss.dir/bench_fig7_ipc_eyeriss.cpp.o.d"
  "bench_fig7_ipc_eyeriss"
  "bench_fig7_ipc_eyeriss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ipc_eyeriss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
