//===- multilevel/MultiGp.cpp - L-level GP generation & optimizer ---------===//

#include "multilevel/MultiGp.h"

#include "expr/FactoredExpr.h"
#include "support/FaultInjection.h"
#include "support/MathUtil.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "thistle/PermutationSpace.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <exception>
#include <numeric>
#include <sstream>

using namespace thistle;

namespace {

/// Variable handles of one multilevel GP.
struct MultiVars {
  /// T[l][i]: trip-count variable of iterator i at temporal level l.
  std::vector<std::vector<VarId>> T;
  /// P[i]: spatial trip-count variable.
  std::vector<VarId> P;
};

MultiVars internVars(const Problem &Prob, unsigned NumLevels,
                     VarTable &Vars) {
  MultiVars V;
  V.T.resize(NumLevels);
  for (unsigned L = 0; L < NumLevels; ++L)
    for (const Iterator &It : Prob.iterators())
      V.T[L].push_back(
          Vars.intern("t" + std::to_string(L) + "_" + It.Name));
  for (const Iterator &It : Prob.iterators())
    V.P.push_back(Vars.intern("p_" + It.Name));
  return V;
}

/// Level-0 footprint of one tensor over the t0 variables, with the
/// halo arithmetic of section III-A.
FactoredExpr levelZeroFootprint(const Problem &Prob, unsigned TensorIdx,
                                const MultiVars &V) {
  const Tensor &T = Prob.tensors()[TensorIdx];
  FactoredExpr DF;
  for (const DimRef &D : T.Dims) {
    Signomial Extent;
    std::int64_t StrideSum = 0;
    for (const DimRef::Term &Term : D.Terms) {
      Extent += Signomial(Monomial::variable(
          V.T[0][Term.Iter], 1.0, static_cast<double>(Term.Stride)));
      StrideSum += Term.Stride;
    }
    if (StrideSum != 1)
      Extent += Signomial::constant(-static_cast<double>(StrideSum - 1));
    DF.pushFactor(Extent);
  }
  return DF;
}

/// The symbolic model of one tensor on one hierarchy: footprints per
/// level and volumes per boundary, chained with Algorithm 1 exactly as
/// thistle/ExprGen does for the fixed depth.
struct TensorChain {
  std::vector<FactoredExpr> DF; ///< Footprint at each level (post-walk).
  std::vector<FactoredExpr> DV; ///< Volume across each boundary.
};

TensorChain buildChain(const Problem &Prob, const Hierarchy &H,
                       unsigned TensorIdx, const MultiVars &V,
                       const std::vector<std::vector<unsigned>> &Perms,
                       const std::vector<unsigned> &TiledIters) {
  const Tensor &T = Prob.tensors()[TensorIdx];
  const unsigned L = H.numLevels();
  const unsigned F = H.FanoutLevel;

  TensorChain Chain;
  Chain.DF.resize(L);
  Chain.DV.resize(H.numBoundaries());
  Chain.DF[0] = levelZeroFootprint(Prob, TensorIdx, V);

  FactoredExpr DF = Chain.DF[0];
  for (unsigned Lv = 1; Lv < L; ++Lv) {
    // The spatial fan-out sits below level F: the level-F tile spans the
    // grid along present iterators.
    if (Lv == F)
      for (unsigned I = 0; I < Prob.numIterators(); ++I) {
        if (!T.usesIter(I))
          continue;
        // Substitute the deepest chained variable still present (the
        // level-(F-1) var for tiled iterators, t0 for untiled ones).
        for (unsigned Back = F; Back > 0; --Back) {
          VarId Target = V.T[Back - 1][I];
          if (DF.mentions(Target)) {
            DF = DF.substituted(Target, Monomial::variable(V.P[I]) *
                                            Monomial::variable(Target));
            break;
          }
        }
      }

    // Algorithm 1 at level Lv (inner-to-outer walk of its loops).
    FactoredExpr DV = DF;
    if (T.ReadWrite)
      DV.multiplyPrefix(Monomial(2.0));
    bool CanHoist = true;
    const std::vector<unsigned> &Perm = Perms[Lv];
    for (std::size_t Pos = Perm.size(); Pos > 0; --Pos) {
      unsigned It = Perm[Pos - 1];
      VarId LevelVar = V.T[Lv][It];
      VarId PrevVar = V.T[Lv - 1][It];
      Monomial Repl =
          Monomial::variable(LevelVar) * Monomial::variable(PrevVar);
      if (CanHoist) {
        if (T.usesIter(It)) {
          CanHoist = false;
          DF = DF.substituted(PrevVar, Repl);
          DV = DV.substituted(PrevVar, Repl);
        }
      } else {
        if (T.usesIter(It))
          DF = DF.substituted(PrevVar, Repl);
        DV.multiplyPrefix(Monomial::variable(LevelVar));
      }
    }

    // Multipliers above the walked level and the spatial rules (see
    // MultiNestAnalysis): all trips of higher levels; all spatial trips
    // for private boundaries; present-only at the fan-out boundary.
    for (unsigned M = Lv + 1; M < L; ++M)
      for (unsigned I : TiledIters)
        DV.multiplyPrefix(Monomial::variable(V.T[M][I]));
    if (Lv < F) {
      for (unsigned I : TiledIters)
        DV.multiplyPrefix(Monomial::variable(V.P[I]));
    } else if (Lv == F) {
      for (unsigned I : TiledIters)
        if (T.usesIter(I))
          DV.multiplyPrefix(Monomial::variable(V.P[I]));
    }
    Chain.DV[Lv - 1] = DV;
    Chain.DF[Lv] = DF;
  }
  return Chain;
}

/// One per-iterator integer chain of cumulative tile extents:
/// v_0 | v_1 | ... | v_{F-1} | v_sp | v_F | ... | v_{L-1} = N.
using IterChain = std::vector<std::int64_t>;

/// Converts a chain to the per-level factors of one iterator.
void chainToFactors(const IterChain &Chain, unsigned L, unsigned F,
                    MultiMapping &Map, unsigned Iter) {
  Map.TempFactors[0][Iter] = Chain[0];
  for (unsigned Lv = 1; Lv < L; ++Lv) {
    unsigned Pos = Lv < F ? Lv : Lv + 1; // Skip the spatial slot.
    Map.TempFactors[Lv][Iter] = Chain[Pos] / Chain[Pos - 1];
  }
  Map.SpatialFactors[Iter] = Chain[F] / Chain[F - 1];
}

/// Resolves the relative/absolute deadline options into one instant;
/// false when no deadline is configured.
bool resolveDeadline(std::chrono::milliseconds Relative,
                     std::chrono::steady_clock::time_point Absolute,
                     std::chrono::steady_clock::time_point &Out) {
  if (Absolute != std::chrono::steady_clock::time_point{}) {
    Out = Absolute;
    return true;
  }
  if (Relative.count() > 0) {
    Out = std::chrono::steady_clock::now() + Relative;
    return true;
  }
  return false;
}

} // namespace

MultiResult thistle::optimizeHierarchy(const Problem &Prob,
                                       const Hierarchy &H,
                                       const MultiOptions &Options) {
  const CostEvaluator &Evaluator = resolveCostEvaluator(Options.Evaluator);
  {
    MultiResult Invalid;
    std::string HierErr = H.validate();
    if (!HierErr.empty()) {
      Invalid.InputStatus = Status::invalidArgument(std::move(HierErr))
                                .withContext("validating hierarchy");
      return Invalid;
    }
    if (Options.CoDesignCapacities &&
        !(Options.AreaBudgetUm2 > 0.0 &&
          std::isfinite(Options.AreaBudgetUm2))) {
      Invalid.InputStatus =
          Status::invalidArgument(
              "capacity co-design needs a positive finite area budget, "
              "got " + std::to_string(Options.AreaBudgetUm2))
              .withContext("validating multilevel options");
      return Invalid;
    }
  }
  const unsigned L = H.numLevels();
  const unsigned F = H.FanoutLevel;
  const unsigned NumIters = Prob.numIterators();
  MultiResult Result;

  // Tiled iterators (extent > 1, not named untiled).
  std::vector<unsigned> Tiled;
  for (unsigned I = 0; I < NumIters; ++I) {
    const Iterator &It = Prob.iterators()[I];
    if (It.Extent <= 1)
      continue;
    if (std::find(Options.UntiledIterNames.begin(),
                  Options.UntiledIterNames.end(),
                  It.Name) == Options.UntiledIterNames.end())
      Tiled.push_back(I);
  }

  // Permutation classes shared by every permuted level; combinations are
  // spread evenly under the cap.
  std::vector<PermClass> Classes = enumeratePermClasses(Prob, Tiled);
  const unsigned NumSlots = L - 1;
  double TotalCombos = std::pow(static_cast<double>(Classes.size()),
                                static_cast<double>(NumSlots));
  std::size_t Combos = static_cast<std::size_t>(
      std::min<double>(TotalCombos, Options.MaxPermCombos));

  // One shard-local accumulator of the combo sweep: the local winner plus
  // the solver counters. Combos fold into these independently and the
  // shards merge in combo order with a strict minimum, so the reduction
  // reproduces the serial first-minimum winner at every thread count
  // (each combo's Tried budget is already per-combo, and the serial
  // incumbent never pruned later combos).
  struct ComboAcc {
    bool Found = false;
    MultiMapping Map;
    MultiEvalResult Eval;
    Hierarchy Arch;
    double ModelObjective = 0.0;
    double BestObj = 0.0;
    unsigned CombosSolved = 0;
    unsigned GpInfeasible = 0;
    SweepReport Report;
  };

  std::chrono::steady_clock::time_point DeadlineAt;
  const bool HasDeadline =
      resolveDeadline(Options.Deadline, Options.DeadlineAt, DeadlineAt);

  // The build -> solve -> round -> evaluate chain of one combination;
  // runCombo below wraps it with the deadline/fault/exception guards.
  auto comboBody = [&](ComboAcc &Local, std::size_t Combo,
                       std::size_t FullIndex) {
    std::size_t Index = FullIndex;
    std::vector<std::vector<unsigned>> TiledPerms(L);
    for (unsigned Slot = 1; Slot < L; ++Slot) {
      TiledPerms[Slot] = Classes[Index % Classes.size()].Representative;
      Index /= Classes.size();
    }

    // ---- Build the GP.
    GpProblem Gp;
    MultiVars V = internVars(Prob, L, Gp.variables());
    for (unsigned I = 0; I < NumIters; ++I) {
      double Extent = static_cast<double>(Prob.iterators()[I].Extent);
      bool IsTiled =
          std::find(Tiled.begin(), Tiled.end(), I) != Tiled.end();
      if (IsTiled) {
        Monomial Product = Monomial::variable(V.P[I]);
        Gp.addVariableBounds(V.P[I], Extent);
        for (unsigned Lv = 0; Lv < L; ++Lv) {
          Gp.addVariableBounds(V.T[Lv][I], Extent);
          Product = Product * Monomial::variable(V.T[Lv][I]);
        }
        Gp.addEquality(Product, Extent,
                       "extent " + Prob.iterators()[I].Name);
      } else {
        Gp.addEquality(Monomial::variable(V.T[0][I]), Extent, "untiled");
        Gp.addEquality(Monomial::variable(V.P[I]), 1.0, "untiled");
        for (unsigned Lv = 1; Lv < L; ++Lv)
          Gp.addEquality(Monomial::variable(V.T[Lv][I]), 1.0, "untiled");
      }
    }

    // Capacity / PE parameters: constants (fixed hierarchy) or GP
    // variables (capacity co-design under the area budget).
    std::vector<Monomial> EpsLevel(L, Monomial(0.0));
    std::vector<Monomial> CapBound(L, Monomial(1.0));
    Monomial PeBound(static_cast<double>(H.NumPEs));
    std::vector<VarId> CapVars(L, 0);
    VarId PeVar = 0;
    if (Options.CoDesignCapacities) {
      // A non-positive budget is rejected up front (InputStatus).
      const TechParams &Tech = Options.Tech;
      Posynomial PerPEArea(Monomial(Tech.AreaMacUm2));
      for (unsigned Lv = 0; Lv + 1 < L; ++Lv) {
        CapVars[Lv] = Gp.addVariable("C" + std::to_string(Lv));
        double WordArea =
            Lv == 0 ? Tech.AreaRegWordUm2 : Tech.AreaSramWordUm2;
        Gp.addVariableBounds(CapVars[Lv],
                             Options.AreaBudgetUm2 / WordArea);
        CapBound[Lv] = Monomial::variable(CapVars[Lv]);
        EpsLevel[Lv] =
            Lv == 0
                ? Monomial::variable(CapVars[Lv], 1.0, Tech.SigmaRegPj)
                : Monomial::variable(CapVars[Lv], 0.5, Tech.SigmaSramPj);
        if (Lv < F)
          PerPEArea += Posynomial(
              Monomial::variable(CapVars[Lv]).scaled(WordArea));
      }
      EpsLevel[L - 1] = Monomial(H.Levels[L - 1].AccessEnergyPj);
      PeVar = Gp.addVariable("P");
      Gp.addVariableBounds(PeVar,
                           Options.AreaBudgetUm2 / Tech.AreaMacUm2);
      PeBound = Monomial::variable(PeVar);
      Posynomial Area = PerPEArea * PeBound;
      for (unsigned Lv = F; Lv + 1 < L; ++Lv)
        Area += Posynomial(
            Monomial::variable(CapVars[Lv]).scaled(Tech.AreaSramWordUm2));
      Gp.addUpperBound(Area, Options.AreaBudgetUm2, "area");
    } else {
      for (unsigned Lv = 0; Lv < L; ++Lv) {
        EpsLevel[Lv] = Monomial(H.Levels[Lv].AccessEnergyPj);
        if (Lv + 1 < L)
          CapBound[Lv] =
              Monomial(static_cast<double>(H.Levels[Lv].CapacityWords));
      }
    }

    std::vector<Posynomial> LevelFootprint(L);
    std::vector<Posynomial> BoundaryVolume(H.numBoundaries());
    for (unsigned TI = 0; TI < Prob.tensors().size(); ++TI) {
      TensorChain Chain = buildChain(Prob, H, TI, V, TiledPerms, Tiled);
      for (unsigned Lv = 0; Lv < L; ++Lv)
        LevelFootprint[Lv] +=
            Chain.DF[Lv].posynomialUpperBound().expanded();
      for (unsigned B = 0; B < H.numBoundaries(); ++B)
        BoundaryVolume[B] += Chain.DV[B].posynomialUpperBound().expanded();
    }
    for (unsigned Lv = 0; Lv + 1 < L; ++Lv)
      Gp.addUpperBound(LevelFootprint[Lv], CapBound[Lv],
                       H.Levels[Lv].Name + " capacity");
    Monomial SpatialProduct(1.0);
    for (unsigned I : Tiled)
      SpatialProduct = SpatialProduct * Monomial::variable(V.P[I]);
    Gp.addUpperBound(Posynomial(SpatialProduct), PeBound, "PE count");

    const double Nops = static_cast<double>(Prob.numOps());
    Posynomial EnergyObj;
    EnergyObj += Posynomial(EpsLevel[0].scaled(4.0 * Nops));
    EnergyObj += Posynomial(Monomial(H.MacEnergyPj * Nops));
    for (unsigned B = 0; B < H.numBoundaries(); ++B) {
      EnergyObj += BoundaryVolume[B] * EpsLevel[B];
      EnergyObj += BoundaryVolume[B] * EpsLevel[B + 1];
    }
    if (Options.Objective == SearchObjective::Energy) {
      Gp.setObjective(std::move(EnergyObj));
    } else {
      VarId TVar = Gp.addVariable("T");
      Gp.addVariableBounds(TVar, Nops * 1e6);
      Monomial Epi = Monomial::variable(TVar);
      Gp.addUpperBound(Posynomial(SpatialProduct.pow(-1.0).scaled(Nops)),
                       Epi, "compute cycles");
      for (unsigned Lv = 1; Lv < L; ++Lv) {
        Posynomial W = BoundaryVolume[Lv - 1];
        if (Lv < H.numBoundaries())
          W += BoundaryVolume[Lv];
        Posynomial Scaled = W.scaled(1.0 / H.Levels[Lv].Bandwidth);
        if (Lv < F) // Private level: one instance per used PE.
          Scaled = Scaled * SpatialProduct.pow(-1.0);
        Gp.addUpperBound(Scaled, Epi, H.Levels[Lv].Name + " cycles");
      }
      if (Options.Objective == SearchObjective::Delay)
        Gp.setObjective(Posynomial(Epi));
      else
        Gp.setObjective(EnergyObj * Epi);
    }

    GpSolveReport Solve;
    GpSolution Sol = solveGpWithRetry(Gp, Options.Solver, &Solve);
    ++Local.CombosSolved;
    telemetry::count("multigp.combos.solved");
    if (!Sol.Feasible || Sol.Outcome == SolveOutcome::NonFinite) {
      ++Local.GpInfeasible;
      telemetry::count("multigp.combos.infeasible");
      Local.Report.record(Sol.Outcome == SolveOutcome::Infeasible
                              ? TaskOutcome::Infeasible
                              : TaskOutcome::Failed,
                          Combo, FullIndex, 0, Solve.attempts(),
                          Sol.Failure.empty()
                              ? std::string(solveOutcomeName(Sol.Outcome))
                              : Sol.Failure);
      return;
    }
    // Feasible but unconverged iterates are still rounded (Degraded),
    // exactly as the sweep has always done.
    Local.Report.record(Sol.Converged ? TaskOutcome::Solved
                                      : TaskOutcome::Degraded,
                        Combo, FullIndex, 0, Solve.attempts(),
                        Sol.Converged ? std::string() : Sol.Failure);

    // Hierarchy candidates: the fixed input, or rounded capacities / PE
    // counts around the real co-design solution (powers of two, Eq. 4
    // re-pricing, area filter).
    std::vector<Hierarchy> HierCandidates;
    if (!Options.CoDesignCapacities) {
      HierCandidates.push_back(H);
    } else {
      std::vector<std::vector<std::int64_t>> CapChoices(L - 1);
      for (unsigned Lv = 0; Lv + 1 < L; ++Lv)
        CapChoices[Lv] = closestPowersOfTwo(Sol.Values[CapVars[Lv]],
                                            Options.NumCandidates,
                                            /*MinValue=*/4);
      std::vector<std::int64_t> PeChoices;
      double RealP = Sol.Values[PeVar];
      PeChoices.push_back(
          std::max<std::int64_t>(1, static_cast<std::int64_t>(RealP)));
      if (static_cast<std::int64_t>(std::ceil(RealP)) != PeChoices[0])
        PeChoices.push_back(static_cast<std::int64_t>(std::ceil(RealP)));

      std::vector<std::size_t> Pick(L, 0); // Last slot indexes PeChoices.
      while (true) {
        Hierarchy Hc = H;
        for (unsigned Lv = 0; Lv + 1 < L; ++Lv) {
          Hc.Levels[Lv].CapacityWords = CapChoices[Lv][Pick[Lv]];
          Hc.Levels[Lv].AccessEnergyPj =
              Lv == 0 ? Options.Tech.SigmaRegPj *
                            static_cast<double>(Hc.Levels[Lv].CapacityWords)
                      : Options.Tech.SigmaSramPj *
                            std::sqrt(static_cast<double>(
                                Hc.Levels[Lv].CapacityWords));
        }
        Hc.NumPEs = PeChoices[Pick[L - 1]];
        if (Hc.areaUm2(Options.Tech) <= Options.AreaBudgetUm2)
          HierCandidates.push_back(Hc);
        // Odometer over the choice lists.
        unsigned D = L;
        bool More = false;
        while (D > 0) {
          --D;
          std::size_t Limit =
              D + 1 == L ? PeChoices.size() : CapChoices[D].size();
          if (++Pick[D] < Limit) {
            More = true;
            break;
          }
          Pick[D] = 0;
        }
        if (!More)
          break;
      }
      if (HierCandidates.empty())
        return;
    }

    // ---- Rounding: per-iterator cumulative divisor chains, nearest
    // first, depth-first with capacity pruning.
    const unsigned ChainLen = L + 1; // v_0..v_{F-1}, v_sp, v_F..v_{L-1}.
    std::vector<std::vector<IterChain>> Candidates(NumIters);
    for (unsigned I = 0; I < NumIters; ++I) {
      std::int64_t Extent = Prob.iterators()[I].Extent;
      bool IsTiled =
          std::find(Tiled.begin(), Tiled.end(), I) != Tiled.end();
      if (!IsTiled) {
        IterChain Whole(ChainLen, Extent);
        Candidates[I] = {Whole};
        continue;
      }
      // Real cumulative chain values from the solver.
      std::vector<double> Real(ChainLen);
      double Cum = 1.0;
      for (unsigned Pos = 0; Pos < ChainLen; ++Pos) {
        if (Pos == F)
          Cum *= Sol.Values[V.P[I]];
        else
          Cum *= Sol.Values[V.T[Pos < F ? Pos : Pos - 1][I]];
        Real[Pos] = Cum;
      }
      // Top-down divisor chains.
      std::vector<IterChain> Stack = {{}};
      for (unsigned Back = 0; Back < ChainLen; ++Back) {
        unsigned Pos = ChainLen - 1 - Back;
        std::vector<IterChain> Next;
        for (const IterChain &Partial : Stack) {
          std::int64_t Parent =
              Partial.empty() ? Extent : Partial.front();
          std::vector<std::int64_t> Divs =
              Pos + 1 == ChainLen
                  ? std::vector<std::int64_t>{Extent}
                  : closestDivisors(Parent, Real[Pos],
                                    Options.NumCandidates);
          for (std::int64_t D : Divs) {
            IterChain C = Partial;
            C.insert(C.begin(), D);
            Next.push_back(C);
          }
        }
        Stack = std::move(Next);
      }
      Candidates[I] = std::move(Stack);
    }

    // DFS cross product, evaluating complete mappings.
    MultiMapping Map;
    Map.TempFactors.assign(L, std::vector<std::int64_t>(NumIters, 1));
    Map.SpatialFactors.assign(NumIters, 1);
    Map.Perms.resize(L);
    std::vector<unsigned> Identity(NumIters);
    std::iota(Identity.begin(), Identity.end(), 0u);
    Map.Perms[0] = Identity;
    for (unsigned Lv = 1; Lv < L; ++Lv) {
      Map.Perms[Lv] = TiledPerms[Lv];
      for (unsigned I = 0; I < NumIters; ++I)
        if (std::find(TiledPerms[Lv].begin(), TiledPerms[Lv].end(), I) ==
            TiledPerms[Lv].end())
          Map.Perms[Lv].push_back(I);
    }

    std::size_t Tried = 0;
    auto recurse = [&](auto &&Self, unsigned I) -> void {
      if (Tried >= Options.MaxMappingCandidates)
        return;
      if (I == NumIters) {
        for (const Hierarchy &Hc : HierCandidates) {
          ++Tried;
          if (Map.numPEsUsed() > Hc.NumPEs)
            continue;
          MultiEvalResult Eval = Evaluator.evaluate(Prob, Hc, Map);
          if (!Eval.Legal)
            continue;
          double Obj = objectiveValue(Eval, Options.Objective);
          if (!Local.Found || Obj < Local.BestObj) {
            Local.Found = true;
            Local.Map = Map;
            Local.Eval = Eval;
            Local.Arch = Hc;
            Local.ModelObjective = Sol.Objective;
            Local.BestObj = Obj;
          }
        }
        return;
      }
      for (const IterChain &C : Candidates[I]) {
        chainToFactors(C, L, F, Map, I);
        Self(Self, I + 1);
      }
    };
    recurse(recurse, 0);
  };

  auto runCombo = [&](ComboAcc &Local, std::size_t Combo) {
    // Spread combo indices across the full space when capped.
    const std::size_t FullIndex = static_cast<std::size_t>(
        TotalCombos <= Options.MaxPermCombos
            ? static_cast<double>(Combo)
            : std::floor(static_cast<double>(Combo) * TotalCombos /
                         static_cast<double>(Combos)));
    telemetry::TraceScope ComboSpan("multigp.combo", Combo);

    if (HasDeadline && std::chrono::steady_clock::now() >= DeadlineAt) {
      Local.Report.DeadlineExpired = true;
      Local.Report.record(TaskOutcome::Skipped, Combo, FullIndex, 0, 0,
                          "deadline expired before the combo was attempted");
      return;
    }
    if (fault::shouldFail("multigp.combo",
                          static_cast<std::int64_t>(Combo))) {
      Local.Report.record(TaskOutcome::Failed, Combo, FullIndex, 0, 0,
                          "injected fault at site multigp.combo");
      return;
    }
    try {
      comboBody(Local, Combo, FullIndex);
    } catch (const std::exception &E) {
      Local.Report.record(TaskOutcome::Failed, Combo, FullIndex, 0, 0,
                          std::string("exception: ") + E.what());
    }
  };

  telemetry::beginEpoch();
  telemetry::TraceScope SweepSpan("multigp.optimize_hierarchy");
  telemetry::count("multigp.sweeps");
  ThreadPool Pool(Options.Threads);
  ComboAcc Best = parallelReduce(
      Pool, Combos, ComboAcc(),
      [&](ComboAcc &Local, std::size_t Combo) { runCombo(Local, Combo); },
      [](ComboAcc &Acc, ComboAcc &&Local) {
        Acc.CombosSolved += Local.CombosSolved;
        Acc.GpInfeasible += Local.GpInfeasible;
        Acc.Report.merge(std::move(Local.Report));
        if (Local.Found && (!Acc.Found || Local.BestObj < Acc.BestObj)) {
          Acc.Found = true;
          Acc.Map = std::move(Local.Map);
          Acc.Eval = std::move(Local.Eval);
          Acc.Arch = std::move(Local.Arch);
          Acc.ModelObjective = Local.ModelObjective;
          Acc.BestObj = Local.BestObj;
        }
      });
  if (telemetry::traceEnabled())
    SweepSpan.setDetail("combos=" + std::to_string(Combos) + " solved=" +
                        std::to_string(Best.Report.Solved) + " degraded=" +
                        std::to_string(Best.Report.Degraded));
  Result.CombosSolved = Best.CombosSolved;
  Result.GpInfeasible = Best.GpInfeasible;
  Result.Report = std::move(Best.Report);
  if (Best.Found) {
    Result.Found = true;
    Result.Map = std::move(Best.Map);
    Result.Eval = std::move(Best.Eval);
    Result.Arch = std::move(Best.Arch);
    Result.ModelObjective = Best.ModelObjective;
  }
  return Result;
}
