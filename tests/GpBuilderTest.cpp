//===- tests/GpBuilderTest.cpp - GP generation tests ----------------------===//
//
// Structural checks on the generated geometric programs: Eq. 3's shape in
// dataflow mode, Eq. 5's extra variables/constraints in co-design mode,
// the delay epigraph, the EDP objective, halo-bound variants, and the
// consistency of the extracted real solution.
//
//===----------------------------------------------------------------------===//

#include "ir/Builders.h"

#include <cmath>
#include "support/Rng.h"
#include "thistle/GpBuilder.h"
#include "thistle/PermutationSpace.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace thistle;

namespace {

struct GpBuilderFixture : public ::testing::Test {
  ConvLayer Layer;
  Problem Prob = [this] {
    Layer.K = 16;
    Layer.C = 8;
    Layer.Hin = 8;
    Layer.Win = 8;
    Layer.R = 3;
    Layer.S = 3;
    return makeConvProblem(Layer);
  }();

  GpBuildSpec baseSpec(DesignMode Mode, SearchObjective Obj) {
    GpBuildSpec Spec;
    Spec.Mode = Mode;
    Spec.Objective = Obj;
    Spec.TiledIters = {Prob.iteratorIndex("k"), Prob.iteratorIndex("c"),
                       Prob.iteratorIndex("h"), Prob.iteratorIndex("w")};
    Spec.PePerm = Spec.TiledIters;
    Spec.DramPerm = Spec.TiledIters;
    Spec.Arch = eyerissArch();
    Spec.AreaBudgetUm2 = eyerissAreaUm2(Spec.Tech);
    return Spec;
  }

  static bool hasConstraint(const GpProblem &Gp, const std::string &Label) {
    for (const GpProblem::Constraint &C : Gp.constraints())
      if (C.Label == Label)
        return true;
    return false;
  }
};

} // namespace

TEST_F(GpBuilderFixture, DataflowModeStructure) {
  GpBuild B = buildGp(
      Prob, baseSpec(DesignMode::DataflowOnly, SearchObjective::Energy));
  EXPECT_FALSE(B.HasArchVars);
  EXPECT_FALSE(B.HasEpigraph);
  EXPECT_TRUE(hasConstraint(B.Gp, "register capacity"));
  EXPECT_TRUE(hasConstraint(B.Gp, "SRAM capacity"));
  EXPECT_TRUE(hasConstraint(B.Gp, "PE count"));
  EXPECT_FALSE(hasConstraint(B.Gp, "area"));
  EXPECT_TRUE(B.Gp.objective().isPosynomial());
  // One extent equality per tiled iterator; untiled/extent-1 iterators
  // get pinning equalities.
  EXPECT_GE(B.Gp.equalities().size(), 4u);
}

TEST_F(GpBuilderFixture, CoDesignModeStructure) {
  GpBuild B = buildGp(Prob,
                      baseSpec(DesignMode::CoDesign, SearchObjective::Energy));
  EXPECT_TRUE(B.HasArchVars);
  EXPECT_TRUE(hasConstraint(B.Gp, "area"));
  EXPECT_TRUE(B.Gp.variables().contains("R"));
  EXPECT_TRUE(B.Gp.variables().contains("S"));
  EXPECT_TRUE(B.Gp.variables().contains("P"));
}

TEST_F(GpBuilderFixture, DelayEpigraphStructure) {
  GpBuild B = buildGp(
      Prob, baseSpec(DesignMode::DataflowOnly, SearchObjective::Delay));
  EXPECT_TRUE(B.HasEpigraph);
  EXPECT_TRUE(hasConstraint(B.Gp, "compute cycles"));
  EXPECT_TRUE(hasConstraint(B.Gp, "DRAM cycles"));
  EXPECT_TRUE(hasConstraint(B.Gp, "SRAM cycles"));
  // The objective is just T.
  EXPECT_TRUE(B.Gp.objective().isMonomial());
}

TEST_F(GpBuilderFixture, EdpObjectiveIsPosynomialWithEpigraph) {
  GpBuild B = buildGp(
      Prob,
      baseSpec(DesignMode::CoDesign, SearchObjective::EnergyDelayProduct));
  EXPECT_TRUE(B.HasEpigraph);
  EXPECT_TRUE(B.Gp.objective().isPosynomial());
  EXPECT_GT(B.Gp.objective().monomials().size(), 1u);
  // Every objective term carries the epigraph variable T.
  for (const Monomial &M : B.Gp.objective().monomials())
    EXPECT_TRUE(M.mentions(B.EpigraphVar));
}

TEST_F(GpBuilderFixture, AllConstraintsArePosynomials) {
  for (DesignMode Mode : {DesignMode::DataflowOnly, DesignMode::CoDesign})
    for (SearchObjective Obj :
         {SearchObjective::Energy, SearchObjective::Delay,
          SearchObjective::EnergyDelayProduct}) {
      GpBuild B = buildGp(Prob, baseSpec(Mode, Obj));
      for (const GpProblem::Constraint &C : B.Gp.constraints())
        EXPECT_TRUE(C.Lhs.isPosynomial()) << C.Label;
    }
}

TEST_F(GpBuilderFixture, HaloBoundVariantsBothSolve) {
  for (HaloBound Halo :
       {HaloBound::DropNegative, HaloBound::ProductOfTerms}) {
    GpBuildSpec Spec =
        baseSpec(DesignMode::DataflowOnly, SearchObjective::Energy);
    Spec.Halo = Halo;
    GpBuild B = buildGp(Prob, Spec);
    GpSolution S = solveGp(B.Gp);
    EXPECT_TRUE(S.Feasible) << "halo bound " << static_cast<int>(Halo);
  }
}

TEST_F(GpBuilderFixture, SolutionSatisfiesExtentEqualities) {
  GpBuildSpec Spec =
      baseSpec(DesignMode::DataflowOnly, SearchObjective::Energy);
  GpBuild B = buildGp(Prob, Spec);
  GpSolution S = solveGp(B.Gp);
  ASSERT_TRUE(S.Feasible);
  RealSolution Real = extractSolution(Prob, B, Spec, S);
  for (unsigned I = 0; I < Prob.numIterators(); ++I) {
    double Product = 1.0;
    for (unsigned L = 0; L < NumTileLevels; ++L)
      Product *= Real.Trips[I][L];
    EXPECT_NEAR(Product, static_cast<double>(Prob.iterators()[I].Extent),
                1e-6 * Product)
        << Prob.iterators()[I].Name;
  }
  EXPECT_DOUBLE_EQ(Real.RegWords, 512.0);
  EXPECT_DOUBLE_EQ(Real.NumPEs, 168.0);
}

TEST_F(GpBuilderFixture, CoDesignSolutionRespectsArea) {
  GpBuildSpec Spec = baseSpec(DesignMode::CoDesign, SearchObjective::Energy);
  GpBuild B = buildGp(Prob, Spec);
  GpSolution S = solveGp(B.Gp);
  ASSERT_TRUE(S.Feasible);
  RealSolution Real = extractSolution(Prob, B, Spec, S);
  double Area = (Spec.Tech.AreaRegWordUm2 * Real.RegWords +
                 Spec.Tech.AreaMacUm2) *
                    Real.NumPEs +
                Spec.Tech.AreaSramWordUm2 * Real.SramWords;
  EXPECT_LE(Area, Spec.AreaBudgetUm2 * 1.0001);
}

TEST_F(GpBuilderFixture, GpOptimumIsNoWorseThanRandomFeasiblePoints) {
  // Probabilistic optimality check: sample random feasible integer
  // mappings and evaluate the GP objective expression on them; none may
  // beat the solver's optimum (up to tolerance).
  GpBuildSpec Spec =
      baseSpec(DesignMode::DataflowOnly, SearchObjective::Energy);
  GpBuild B = buildGp(Prob, Spec);
  GpSolution S = solveGp(B.Gp);
  ASSERT_TRUE(S.Feasible);

  Rng R(17);
  const VarTable &Vars = B.Gp.variables();
  unsigned Checked = 0;
  for (int Trial = 0; Trial < 200; ++Trial) {
    Assignment A(Vars.size(), 1.0);
    // Random split of each tiled extent across the four levels.
    for (unsigned I : Spec.TiledIters) {
      std::int64_t Extent = Prob.iterators()[I].Extent;
      double Levels[NumTileLevels];
      double LogRemaining = std::log(static_cast<double>(Extent));
      for (unsigned L = 0; L + 1 < NumTileLevels; ++L) {
        Levels[L] = R.nextDouble() * LogRemaining;
        LogRemaining -= Levels[L];
      }
      Levels[NumTileLevels - 1] = LogRemaining;
      for (unsigned L = 0; L < NumTileLevels; ++L)
        A[B.TripVars[L][I]] = std::exp(Levels[L]);
    }
    // Untiled iterators: whole extent at the register level.
    for (unsigned I = 0; I < Prob.numIterators(); ++I) {
      bool Tiled = std::find(Spec.TiledIters.begin(), Spec.TiledIters.end(),
                             I) != Spec.TiledIters.end();
      if (!Tiled)
        A[B.TripVars[static_cast<unsigned>(TileLevel::Register)][I]] =
            static_cast<double>(Prob.iterators()[I].Extent);
    }
    // Check feasibility against the GP's own constraints.
    bool Feasible = true;
    for (const GpProblem::Constraint &C : B.Gp.constraints())
      if (C.Lhs.evaluate(A) > 1.0) {
        Feasible = false;
        break;
      }
    if (!Feasible)
      continue;
    ++Checked;
    EXPECT_GE(B.Gp.objective().evaluate(A), S.Objective * (1.0 - 1e-4));
  }
  EXPECT_GT(Checked, 0u) << "no random point was feasible; weak test";
}
