//===- nestmodel/NestAnalysis.cpp - Analytical access counting ------------===//

#include "nestmodel/NestAnalysis.h"

#include <algorithm>
#include <cassert>
#include <optional>

using namespace thistle;

namespace {

/// Result of walking one temporal level for one tensor: the volume
/// multiplier from non-hoisted loops, and the streaming iterator (the
/// innermost present one, with its trip count) whose consecutive tiles
/// are counted as a union.
struct LevelWalk {
  std::int64_t Multiplier = 1;
  std::optional<unsigned> StreamIter;
  std::int64_t StreamTrip = 1;
};

/// Applies the Algorithm-1 counting rules to one tensor at one temporal
/// level; \p Perm is the outer-to-inner loop order, \p Trips the
/// per-iterator trip counts at this level.
LevelWalk walkTemporalLevel(const Tensor &T, const std::vector<unsigned> &Perm,
                            const std::vector<std::int64_t> &Trips) {
  LevelWalk Walk;
  bool CanHoist = true;
  for (std::size_t Pos = Perm.size(); Pos > 0; --Pos) {
    unsigned It = Perm[Pos - 1];
    std::int64_t Trip = Trips[It];
    if (Trip == 1)
      continue; // Trip-1 loops are no-ops; the model sees through them.
    if (CanHoist) {
      if (T.usesIter(It)) {
        // Innermost present iterator: consecutive tiles stream along its
        // dimension and their union is counted once ("replace").
        CanHoist = false;
        Walk.StreamIter = It;
        Walk.StreamTrip = Trip;
      }
      // else: absent below the hoist point -> copy hoisted above, free.
    } else {
      // Above the hoist point every loop re-triggers the copy.
      Walk.Multiplier *= Trip;
    }
  }
  return Walk;
}

/// Words in the exact union of \p Walk.StreamTrip consecutive tiles of
/// shape \p Extents along the streaming iterator. Per data dimension the
/// first tile covers E words and each subsequent tile adds
/// min(E, shift) where shift = stride * tile extent is the per-step
/// displacement; min(E, shift) handles both halo overlap (shift < E) and
/// strided holes (shift > E, where the dense hull of the paper's formula
/// would overcount).
std::int64_t unionFootprintWords(const Tensor &T,
                                 const std::vector<std::int64_t> &Extents,
                                 const LevelWalk &Walk) {
  std::int64_t Words = 1;
  for (const DimRef &D : T.Dims) {
    std::int64_t DimExtent = D.extentFor(Extents);
    if (Walk.StreamIter && D.uses(*Walk.StreamIter)) {
      std::int64_t Stride = 0;
      for (const DimRef::Term &Term : D.Terms)
        if (Term.Iter == *Walk.StreamIter)
          Stride = Term.Stride;
      std::int64_t Shift = Stride * Extents[*Walk.StreamIter];
      DimExtent += (Walk.StreamTrip - 1) * std::min(DimExtent, Shift);
    }
    Words *= DimExtent;
  }
  return Words;
}

} // namespace

std::int64_t NestProfile::dramTraffic() const {
  std::int64_t Sum = 0;
  for (const TensorVolumes &V : PerTensor)
    Sum += V.DramToSram + V.SramToDram;
  return Sum;
}

std::int64_t NestProfile::sramRegTraffic() const {
  std::int64_t Sum = 0;
  for (const TensorVolumes &V : PerTensor)
    Sum += V.SramToReg + V.RegToSram;
  return Sum;
}

NestProfile thistle::analyzeNest(const Problem &Prob, const Mapping &Map) {
  assert(Map.validate(Prob).empty() && "mapping must validate");
  const unsigned NumIters = Prob.numIterators();

  NestProfile Profile;
  Profile.PerTensor.resize(Prob.tensors().size());
  Profile.PEsUsed = Map.numPEsUsed();

  std::vector<std::int64_t> DramTrips(NumIters), PeTrips(NumIters);
  for (unsigned I = 0; I < NumIters; ++I) {
    DramTrips[I] = Map.factor(I, TileLevel::DramTemporal);
    PeTrips[I] = Map.factor(I, TileLevel::PeTemporal);
  }

  const std::vector<std::int64_t> RegExt = Map.registerTileExtents();
  const std::vector<std::int64_t> SramExt = Map.sramTileExtents();

  for (std::size_t TI = 0; TI < Prob.tensors().size(); ++TI) {
    const Tensor &T = Prob.tensors()[TI];
    TensorVolumes &V = Profile.PerTensor[TI];

    // DRAM <-> SRAM: start from the SRAM tile, walk the DRAM-level loops.
    {
      LevelWalk Walk = walkTemporalLevel(T, Map.DramPerm, DramTrips);
      std::int64_t Volume =
          Walk.Multiplier * unionFootprintWords(T, SramExt, Walk);
      V.DramToSram = Volume;
      V.SramToDram = T.ReadWrite ? Volume : 0;
    }

    // SRAM <-> registers: start from the register tile, walk the per-PE
    // loops, then multiply by present spatial trips (multicast collapse)
    // and by every DRAM-level trip (per-level model).
    {
      LevelWalk Walk = walkTemporalLevel(T, Map.PePerm, PeTrips);
      std::int64_t M = Walk.Multiplier;
      for (unsigned I = 0; I < NumIters; ++I) {
        if (T.usesIter(I))
          M *= Map.factor(I, TileLevel::Spatial);
        M *= DramTrips[I];
      }
      std::int64_t Volume = M * unionFootprintWords(T, RegExt, Walk);
      V.SramToReg = Volume;
      V.RegToSram = T.ReadWrite ? Volume : 0;
    }

    // Buffer occupancies (dense tile boxes).
    Profile.RegTileWords += T.footprintWords(RegExt);
    Profile.SramTileWords += T.footprintWords(SramExt);
  }
  return Profile;
}
