//===- support/RunReport.cpp - Schema-versioned JSON run report -----------===//

#include "support/RunReport.h"

#include "support/TablePrinter.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>

using namespace thistle;

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// JSON number: finite doubles in shortest-ish form, non-finite as null
/// (JSON has no inf/nan).
std::string jsonNumber(double V) {
  if (!std::isfinite(V))
    return "null";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

/// Tiny order-preserving JSON writer: enough structure to keep the
/// emitter readable without pulling in a library.
class JsonWriter {
public:
  explicit JsonWriter(std::ostringstream &OS) : OS(OS) {}

  void beginObject() { punct("{"); }
  void endObject() { close("}"); }
  void beginArray() { punct("["); }
  void endArray() { close("]"); }

  void key(const char *K) {
    comma();
    indent();
    OS << '"' << K << "\": ";
    PendingValue = true;
  }

  void value(const std::string &S) { raw('"' + jsonEscape(S) + '"'); }
  void value(const char *S) { value(std::string(S)); }
  void value(double V) { raw(jsonNumber(V)); }
  void value(std::uint64_t V) { raw(std::to_string(V)); }
  void value(std::int64_t V) { raw(std::to_string(V)); }
  void value(unsigned V) { raw(std::to_string(V)); }
  void value(int V) { raw(std::to_string(V)); }
  void value(bool V) { raw(V ? "true" : "false"); }

private:
  void comma() {
    if (NeedComma)
      OS << ",\n";
    NeedComma = false;
  }
  void indent() {
    if (PendingValue)
      return;
    for (int I = 0; I < Depth; ++I)
      OS << "  ";
  }
  void punct(const char *Open) {
    comma();
    indent();
    PendingValue = false;
    OS << Open << "\n";
    ++Depth;
    NeedComma = false;
  }
  void close(const char *Close) {
    if (NeedComma)
      OS << "\n";
    --Depth;
    NeedComma = false;
    PendingValue = false;
    indent();
    OS << Close;
    NeedComma = true;
  }
  void raw(const std::string &Text) {
    comma();
    indent();
    PendingValue = false;
    OS << Text;
    NeedComma = true;
  }

  std::ostringstream &OS;
  int Depth = 0;
  bool NeedComma = false;
  bool PendingValue = false;
};

} // namespace

std::string RunReport::toJson() const {
  std::ostringstream OS;
  JsonWriter W(OS);
  W.beginObject();
  W.key("schema");
  W.value(RunReportSchema);
  W.key("tool");
  W.value(Tool);
  W.key("workload");
  W.value(Workload);
  W.key("mode");
  W.value(Mode);
  W.key("objective");
  W.value(Objective);
  W.key("hierarchy");
  W.value(Hierarchy);
  W.key("threads");
  W.value(Threads);
  W.key("wall_seconds");
  W.value(WallSeconds);
  W.key("exit_code");
  W.value(ExitCode);

  W.key("result");
  W.beginObject();
  W.key("found");
  W.value(Found);
  W.key("energy_pj");
  W.value(EnergyPj);
  W.key("energy_per_mac_pj");
  W.value(EnergyPerMacPj);
  W.key("cycles");
  W.value(Cycles);
  W.key("mac_ipc");
  W.value(MacIpc);
  W.key("edp_pj_cycles");
  W.value(EdpPjCycles);
  W.endObject();

  W.key("evaluator");
  W.beginObject();
  W.key("backend");
  W.value(Evaluator.Backend);
  W.key("cross_check");
  W.value(Evaluator.CrossCheck);
  W.key("evals");
  W.value(Evaluator.Evals);
  W.key("divergent_evals");
  W.value(Evaluator.DivergentEvals);
  W.key("counters_compared");
  W.value(Evaluator.CountersCompared);
  W.key("counter_mismatches");
  W.value(Evaluator.CounterMismatches);
  W.key("max_abs_delta");
  W.value(Evaluator.MaxAbsDelta);
  W.key("max_rel_delta");
  W.value(Evaluator.MaxRelDelta);
  W.key("samples");
  W.beginArray();
  for (const RunReportEvaluatorSample &S : Evaluator.Samples) {
    W.beginObject();
    W.key("counter");
    W.value(S.Counter);
    W.key("primary");
    W.value(S.Primary);
    W.key("reference");
    W.value(S.Reference);
    W.endObject();
  }
  W.endArray();
  W.endObject();

  W.key("sweep");
  if (!HasSweep) {
    W.value(false); // No sweep ran (usage error / validation failure).
  } else {
    W.beginObject();
    W.key("task_noun");
    W.value(SweepTaskNoun);
    W.key("tasks");
    W.value(Sweep.total());
    W.key("solved");
    W.value(Sweep.Solved);
    W.key("retried");
    W.value(Sweep.Retried);
    W.key("degraded");
    W.value(Sweep.Degraded);
    W.key("infeasible");
    W.value(Sweep.Infeasible);
    W.key("failed");
    W.value(Sweep.Failed);
    W.key("skipped");
    W.value(Sweep.Skipped);
    W.key("skipped_by_policy");
    W.value(Sweep.SkippedByPolicy);
    W.key("deadline_expired");
    W.value(Sweep.DeadlineExpired);
    W.key("clean");
    W.value(Sweep.clean());
    W.key("incidents");
    W.beginArray();
    for (const SweepIncident &I : Sweep.Incidents) {
      W.beginObject();
      W.key("index");
      W.value(static_cast<std::uint64_t>(I.Index));
      W.key("a");
      W.value(static_cast<std::uint64_t>(I.A));
      W.key("b");
      W.value(static_cast<std::uint64_t>(I.B));
      W.key("outcome");
      W.value(taskOutcomeName(I.Outcome));
      W.key("attempts");
      W.value(I.Attempts);
      W.key("detail");
      W.value(I.Detail);
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }

  W.key("network");
  if (!Network.Present) {
    W.value(false); // Not a --network run.
  } else {
    W.beginObject();
    W.key("layers_total");
    W.value(Network.LayersTotal);
    W.key("layers_found");
    W.value(Network.LayersFound);
    W.key("unique_shapes");
    W.value(Network.UniqueShapes);
    W.key("cache_enabled");
    W.value(Network.CacheEnabled);
    W.key("cache_hits");
    W.value(Network.CacheHits);
    W.key("cache_misses");
    W.value(Network.CacheMisses);
    W.key("cache_warm_starts");
    W.value(Network.CacheWarmStarts);
    W.key("arch_candidates");
    W.value(Network.ArchCandidates);
    W.key("summed_objective");
    W.value(Network.SummedObjective);
    W.key("totals");
    W.beginObject();
    W.key("energy_pj");
    W.value(Network.TotalEnergyPj);
    W.key("cycles");
    W.value(Network.TotalCycles);
    W.key("edp_pj_cycles");
    W.value(Network.TotalEdpPjCycles);
    W.key("energy_per_mac_pj");
    W.value(Network.EnergyPerMacPj);
    W.key("macs");
    W.value(Network.Macs);
    W.endObject();
    W.key("layers");
    W.beginArray();
    for (const RunReportNetworkLayer &L : Network.Layers) {
      W.beginObject();
      W.key("name");
      W.value(L.Name);
      W.key("shape_index");
      W.value(L.ShapeIndex);
      W.key("multiplicity");
      W.value(L.Multiplicity);
      W.key("deduplicated");
      W.value(L.Deduplicated);
      W.key("found");
      W.value(L.Found);
      W.key("energy_pj");
      W.value(L.EnergyPj);
      W.key("cycles");
      W.value(L.Cycles);
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }

  W.key("persistence");
  if (!Persistence.Present) {
    W.value(false); // No cache directory was configured.
  } else {
    W.beginObject();
    W.key("directory");
    W.value(Persistence.Directory);
    W.key("capacity");
    W.value(Persistence.Capacity);
    W.key("loaded_files");
    W.value(Persistence.LoadedFiles);
    W.key("loaded_entries");
    W.value(Persistence.LoadedEntries);
    W.key("append_failures");
    W.value(Persistence.AppendFailures);
    W.key("evictions");
    W.value(Persistence.Evictions);
    W.key("data_loss_detected");
    W.value(Persistence.DataLossDetected);
    W.key("problems");
    W.beginArray();
    for (const std::string &P : Persistence.Problems)
      W.value(P);
    W.endArray();
    W.key("snapshot_written");
    W.value(Persistence.SnapshotWritten);
    W.endObject();
  }

  W.key("shards");
  if (!Shards.Present) {
    W.value(false); // Not a sharded or merging run.
  } else {
    W.beginObject();
    W.key("index");
    W.value(Shards.Index);
    W.key("count");
    W.value(Shards.Count);
    W.key("merge");
    W.value(Shards.Merge);
    W.endObject();
  }

  W.key("metrics");
  W.beginObject();
  W.key("counters");
  W.beginObject();
  for (const telemetry::CounterValue &C : Telemetry.Counters) {
    W.key(C.Name.c_str());
    W.value(C.Value);
  }
  W.endObject();
  W.key("stats");
  W.beginObject();
  for (const telemetry::StatValue &S : Telemetry.Stats) {
    W.key(S.Name.c_str());
    W.beginObject();
    W.key("count");
    W.value(S.Count);
    W.key("sum");
    W.value(S.Sum);
    W.key("min");
    W.value(S.Min);
    W.key("max");
    W.value(S.Max);
    W.key("mean");
    W.value(S.mean());
    W.endObject();
  }
  W.endObject();
  W.endObject();

  W.key("trace");
  W.beginObject();
  W.key("dropped_spans");
  W.value(Telemetry.DroppedSpans);
  W.key("spans");
  W.beginArray();
  for (const telemetry::Span &S : Telemetry.Spans) {
    W.beginObject();
    W.key("name");
    W.value(S.Name);
    W.key("epoch");
    W.value(S.Epoch);
    W.key("index");
    // NoIndex marks a span outside any sweep task.
    if (S.Index == telemetry::NoIndex)
      W.value(-1);
    else
      W.value(static_cast<std::uint64_t>(S.Index));
    W.key("depth");
    W.value(S.Depth);
    W.key("start_ns");
    W.value(S.StartNs);
    W.key("duration_ns");
    W.value(S.DurationNs);
    W.key("detail");
    W.value(S.Detail);
    W.endObject();
  }
  W.endArray();
  W.endObject();

  W.endObject();
  OS << "\n";
  return OS.str();
}

void thistle::printProfile(std::ostream &OS,
                           const telemetry::Snapshot &Snap) {
  OS << "\n==== profile ====\n";
  if (Snap.Counters.empty() && Snap.Stats.empty() && Snap.Spans.empty()) {
    OS << "(no telemetry collected"
       << (telemetry::compiledIn() ? "" : "; compiled out") << ")\n";
    return;
  }

  if (!Snap.Spans.empty()) {
    // Aggregate spans by name, in first-appearance order of the
    // deterministic merged span list.
    struct Agg {
      std::uint64_t Count = 0;
      std::uint64_t TotalNs = 0;
      std::uint64_t MaxNs = 0;
    };
    std::vector<std::pair<std::string, Agg>> Order;
    std::map<std::string, std::size_t> Pos;
    for (const telemetry::Span &S : Snap.Spans) {
      auto [It, Inserted] = Pos.try_emplace(S.Name, Order.size());
      if (Inserted)
        Order.push_back({S.Name, Agg()});
      Agg &A = Order[It->second].second;
      ++A.Count;
      A.TotalNs += S.DurationNs;
      A.MaxNs = std::max(A.MaxNs, S.DurationNs);
    }
    TablePrinter Table({"span", "count", "total ms", "mean ms", "max ms"});
    for (const auto &[Name, A] : Order)
      Table.addRow({Name,
                    TablePrinter::formatInt(
                        static_cast<std::int64_t>(A.Count)),
                    TablePrinter::formatDouble(A.TotalNs * 1e-6, 3),
                    TablePrinter::formatDouble(
                        A.TotalNs * 1e-6 / static_cast<double>(A.Count), 3),
                    TablePrinter::formatDouble(A.MaxNs * 1e-6, 3)});
    Table.print(OS);
    if (Snap.DroppedSpans)
      OS << "(" << Snap.DroppedSpans << " spans dropped at buffer cap)\n";
  }

  if (!Snap.Counters.empty()) {
    TablePrinter Table({"counter", "value"});
    for (const telemetry::CounterValue &C : Snap.Counters)
      Table.addRow({C.Name, TablePrinter::formatInt(
                                static_cast<std::int64_t>(C.Value))});
    Table.print(OS);
  }
  if (!Snap.Stats.empty()) {
    TablePrinter Table({"stat", "count", "mean", "min", "max"});
    for (const telemetry::StatValue &S : Snap.Stats)
      Table.addRow({S.Name,
                    TablePrinter::formatInt(
                        static_cast<std::int64_t>(S.Count)),
                    TablePrinter::formatDouble(S.mean(), 4),
                    TablePrinter::formatDouble(S.Min, 4),
                    TablePrinter::formatDouble(S.Max, 4)});
    Table.print(OS);
  }
}
