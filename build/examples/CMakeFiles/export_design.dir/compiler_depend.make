# Empty compiler generated dependencies file for export_design.
# This may be replaced when dependencies are built.
