//===- support/ThreadPool.h - Reusable worker-thread pool -------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool plus the `parallelFor` / `parallelReduce`
/// helpers the co-design engine fans out on. The design goal is *determinism
/// under any worker count*: work is partitioned into contiguous shards,
/// per-shard state never crosses a shard boundary, and reductions merge the
/// shard accumulators in shard order on the calling thread. Any associative
/// combine therefore yields a bit-identical result whether the pool has 1
/// or 64 workers — callers (the perm-class pair sweep, the batched mapper)
/// rely on this to keep search results independent of `--threads`.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_SUPPORT_THREADPOOL_H
#define THISTLE_SUPPORT_THREADPOOL_H

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace thistle {

/// Fixed-size pool of worker threads consuming a FIFO task queue.
class ThreadPool {
public:
  /// Spawns \p NumThreads workers; 0 means one per hardware thread.
  explicit ThreadPool(unsigned NumThreads = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numWorkers() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Enqueues \p Task for execution on some worker.
  void submit(std::function<void()> Task);

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned defaultWorkerCount();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable Ready;
  bool Stopping = false;
};

namespace detail {

/// Bounds of shard \p Shard when [0, N) is split into \p NumShards
/// contiguous, near-equal pieces.
inline std::pair<std::size_t, std::size_t>
shardRange(std::size_t N, unsigned NumShards, unsigned Shard) {
  return {N * Shard / NumShards, N * (Shard + 1) / NumShards};
}

/// Number of shards [0, N) is split into: one per worker, but never more
/// than N and never so many that a shard would hold fewer than \p Grain
/// items. Grain <= 1 disables the floor (pure per-worker sharding).
inline unsigned numShardsFor(std::size_t N, unsigned Workers,
                             std::size_t Grain) {
  if (N == 0)
    return 0;
  std::size_t Shards = std::min<std::size_t>(Workers, N);
  if (Grain > 1)
    Shards = std::min(Shards, std::max<std::size_t>(N / Grain, 1));
  return static_cast<unsigned>(std::max<std::size_t>(Shards, 1));
}

} // namespace detail

/// Runs `Body(Index, Shard)` for every Index in [0, N), partitioned into
/// contiguous shards (one per worker, capped so each shard holds at least
/// \p Grain items), and blocks until all shards finish. A grain above 1
/// batches small work items so per-task dispatch overhead is amortized —
/// essential when items are microseconds each. Shard identity depends
/// only on (N, worker count, grain), so per-shard scratch indexed by the
/// Shard argument is race-free; callers that need results independent of
/// the shard count must keep their combine logic associative exactly as
/// for worker-count independence. If shards throw, the exception of the
/// lowest-numbered failing shard is rethrown once every shard has
/// finished, so failure is as deterministic as success.
template <typename BodyFn>
void parallelFor(ThreadPool &Pool, std::size_t N, BodyFn &&Body,
                 std::size_t Grain = 1) {
  if (N == 0)
    return;
  const unsigned NumShards =
      detail::numShardsFor(N, Pool.numWorkers(), Grain);
  if (NumShards <= 1) {
    for (std::size_t I = 0; I < N; ++I)
      Body(I, 0u);
    return;
  }

  struct Sync {
    std::mutex M;
    std::condition_variable Done;
    unsigned Remaining;
    std::vector<std::exception_ptr> Errors;
  } S;
  S.Remaining = NumShards;
  S.Errors.resize(NumShards);

  for (unsigned Shard = 0; Shard < NumShards; ++Shard) {
    Pool.submit([&S, &Body, N, NumShards, Shard] {
      auto [Begin, End] = detail::shardRange(N, NumShards, Shard);
      try {
        for (std::size_t I = Begin; I < End; ++I)
          Body(I, Shard);
      } catch (...) {
        S.Errors[Shard] = std::current_exception();
      }
      std::lock_guard<std::mutex> Lock(S.M);
      if (--S.Remaining == 0)
        S.Done.notify_all();
    });
  }

  std::unique_lock<std::mutex> Lock(S.M);
  S.Done.wait(Lock, [&S] { return S.Remaining == 0; });
  for (std::exception_ptr &E : S.Errors)
    if (E)
      std::rethrow_exception(E);
}

/// Folds [0, N) into per-shard copies of \p Init via `Fold(Local, Index)`
/// and merges them in ascending shard order with `Join(Acc, std::move(
/// Local))` on the calling thread. Shard boundaries vary with the worker
/// count (and with \p Grain, see parallelFor), so \p Join must be
/// associative for the result to be independent of them; sums, minima,
/// and tie-broken arg-minima all qualify.
template <typename AccT, typename FoldFn, typename JoinFn>
AccT parallelReduce(ThreadPool &Pool, std::size_t N, AccT Init,
                    FoldFn &&Fold, JoinFn &&Join, std::size_t Grain = 1) {
  if (N == 0)
    return Init;
  const unsigned NumShards =
      detail::numShardsFor(N, Pool.numWorkers(), Grain);
  std::vector<AccT> Locals(NumShards, Init);
  parallelFor(
      Pool, N,
      [&Locals, &Fold](std::size_t I, unsigned Shard) {
        Fold(Locals[Shard], I);
      },
      Grain);
  AccT Result = std::move(Locals[0]);
  for (unsigned Shard = 1; Shard < NumShards; ++Shard)
    Join(Result, std::move(Locals[Shard]));
  return Result;
}

} // namespace thistle

#endif // THISTLE_SUPPORT_THREADPOOL_H
