# Empty dependencies file for thistle_sim.
# This may be replaced when dependencies are built.
