file(REMOVE_RECURSE
  "CMakeFiles/test_permspace.dir/PermSpaceTest.cpp.o"
  "CMakeFiles/test_permspace.dir/PermSpaceTest.cpp.o.d"
  "test_permspace"
  "test_permspace.pdb"
  "test_permspace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_permspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
