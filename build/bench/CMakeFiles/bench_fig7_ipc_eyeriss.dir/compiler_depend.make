# Empty compiler generated dependencies file for bench_fig7_ipc_eyeriss.
# This may be replaced when dependencies are built.
