//===- nestmodel/Objective.h - Search objectives ----------------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The objective an optimizer or search minimizes, shared by every layer
/// that ranks designs: the GP co-design engine (thistle/), the stochastic
/// mapper baseline (nestmodel/Mapper), the multilevel optimizer
/// (multilevel/MultiGp) and the rounding pass. Lives in its own leaf
/// header so evaluation (Evaluator.h) and search (Mapper.h) no longer
/// need forward-declaration tricks to share the enum.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_NESTMODEL_OBJECTIVE_H
#define THISTLE_NESTMODEL_OBJECTIVE_H

namespace thistle {

struct EvalResult;
struct MultiEvalResult;

/// What the search minimizes.
enum class SearchObjective {
  Energy, ///< Total energy (pJ).
  Delay,  ///< Total cycles.
  /// Energy-delay product. The paper's formulation supports it ("energy
  /// or delay (or energy-delay product)") without evaluating it; this
  /// library implements it as an extension.
  EnergyDelayProduct,
};

/// The scalar value an optimizer minimizes for \p Objective.
double objectiveValue(const EvalResult &Eval, SearchObjective Objective);

/// Same, for the hierarchy-generic evaluation. Bit-identical to the
/// EvalResult overload on a classic 3-level machine.
double objectiveValue(const MultiEvalResult &Eval, SearchObjective Objective);

} // namespace thistle

#endif // THISTLE_NESTMODEL_OBJECTIVE_H
