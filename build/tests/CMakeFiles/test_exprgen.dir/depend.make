# Empty dependencies file for test_exprgen.
# This may be replaced when dependencies are built.
