//===- bench/bench_table2_workloads.cpp - Paper Table II ------------------===//
//
// Reproduces Table II: the conv2D configurations of the Yolo-9000 and
// ResNet-18 pipelines, plus derived iteration-space sizes. Then times
// problem construction.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace thistle;

namespace {

void printPipeline(const char *Name, const std::vector<ConvLayer> &Layers) {
  std::printf("%s:\n", Name);
  TablePrinter Table({"Layer", "K", "C", "H=W", "R=S", "stride", "out H=W",
                      "MACs (G)"});
  for (std::size_t I = 0; I < Layers.size(); ++I) {
    const ConvLayer &L = Layers[I];
    Table.addRow({std::to_string(I + 1), TablePrinter::formatInt(L.K),
                  TablePrinter::formatInt(L.C),
                  TablePrinter::formatInt(L.Hin),
                  TablePrinter::formatInt(L.R),
                  TablePrinter::formatInt(L.StrideX),
                  TablePrinter::formatInt(L.outH()),
                  TablePrinter::formatDouble(
                      static_cast<double>(L.numMacs()) * 1e-9, 3)});
  }
  Table.print(std::cout);
  std::printf("\n");
}

void timeProblemConstruction(benchmark::State &State) {
  std::vector<ConvLayer> Layers = allPaperLayers();
  for (auto _ : State)
    for (const ConvLayer &L : Layers)
      benchmark::DoNotOptimize(makeConvProblem(L));
}
BENCHMARK(timeProblemConstruction);

} // namespace

int main(int Argc, char **Argv) {
  thistle::bench::printHeader(
      "Table II", "Conv2D operator configurations (batch size 1; stride 2 "
                  "layers are the ones Table II marks with *)");
  printPipeline("Yolo-9000", yolo9000Layers());
  printPipeline("ResNet-18", resnet18Layers());
  return thistle::bench::runTimings(Argc, Argv);
}
