//===- nestmodel/Evaluator.cpp - Energy/delay evaluation ------------------===//
//
// Thin wrapper over the hierarchy-generic evaluation: the architecture is
// lifted to Hierarchy::classic3Level (which prices the levels with the
// same Eq. 4 per-access energies the fixed-depth code used) and the
// per-level decomposition maps back onto the Eq. 3 components. The
// floating-point grouping of the generic evaluator matches this code's
// original expression term for term, so the wrapped results are
// bit-identical to the pre-unification ones.
//
//===----------------------------------------------------------------------===//

#include "nestmodel/Evaluator.h"

#include "multilevel/MultiNestAnalysis.h"
#include "nestmodel/CostEvaluator.h"

#include <sstream>

using namespace thistle;

EvalResult thistle::evalResultFromMulti(const Problem &Prob,
                                        const ArchConfig &Arch,
                                        const MultiEvalResult &ME) {
  EvalResult Result;
  Result.Profile = profileFromMulti(Prob, ME.Profile);
  const NestProfile &P = Result.Profile;

  // Legality, regenerated in the fixed-depth wording (the generic
  // evaluator names the levels after the hierarchy).
  Result.Legal = ME.Legal;
  std::ostringstream Why;
  if (P.RegTileWords > Arch.RegWordsPerPE)
    Why << "register tile " << P.RegTileWords << " words > capacity "
        << Arch.RegWordsPerPE << "; ";
  if (P.SramTileWords > Arch.SramWords)
    Why << "SRAM tile " << P.SramTileWords << " words > capacity "
        << Arch.SramWords << "; ";
  if (P.PEsUsed > Arch.NumPEs)
    Why << "uses " << P.PEsUsed << " PEs > available " << Arch.NumPEs << "; ";
  Result.IllegalReason = Why.str();

  // Eq. 3 components from the per-level decomposition.
  Result.MacEnergyPj = ME.MacEnergyPj;
  Result.RegEnergyPj = ME.EnergyPerLevelPj[0];
  Result.SramEnergyPj = ME.EnergyPerLevelPj[1];
  Result.DramEnergyPj = ME.EnergyPerLevelPj[2];
  Result.EnergyPj = ME.EnergyPj;
  Result.EnergyPerMacPj = ME.EnergyPerMacPj;

  // Section V-B delay components.
  Result.ComputeCycles = ME.ComputeCycles;
  Result.SramCycles = ME.CyclesPerLevel[1];
  Result.DramCycles = ME.CyclesPerLevel[2];
  Result.Cycles = ME.Cycles;
  Result.MacIpc = ME.MacIpc;
  Result.EdpPjCycles = ME.EdpPjCycles;
  return Result;
}

EvalResult thistle::evaluateMapping(const Problem &Prob, const Mapping &Map,
                                    const ArchConfig &Arch,
                                    const EnergyModel &Energy) {
  Hierarchy H = Hierarchy::classic3Level(Arch, Energy.tech());
  MultiEvalResult ME =
      evaluateMultiMapping(Prob, H, MultiMapping::fromMapping(Prob, Map));
  return evalResultFromMulti(Prob, Arch, ME);
}

EvalResult thistle::evaluateMapping(const Problem &Prob, const Mapping &Map,
                                    const ArchConfig &Arch,
                                    const EnergyModel &Energy,
                                    const CostEvaluator &Evaluator) {
  Hierarchy H = Hierarchy::classic3Level(Arch, Energy.tech());
  MultiEvalResult ME =
      Evaluator.evaluate(Prob, H, MultiMapping::fromMapping(Prob, Map));
  return evalResultFromMulti(Prob, Arch, ME);
}
