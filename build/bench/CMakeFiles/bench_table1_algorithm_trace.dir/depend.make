# Empty dependencies file for bench_table1_algorithm_trace.
# This may be replaced when dependencies are built.
