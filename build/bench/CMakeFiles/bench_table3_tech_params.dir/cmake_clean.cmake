file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_tech_params.dir/bench_table3_tech_params.cpp.o"
  "CMakeFiles/bench_table3_tech_params.dir/bench_table3_tech_params.cpp.o.d"
  "bench_table3_tech_params"
  "bench_table3_tech_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_tech_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
