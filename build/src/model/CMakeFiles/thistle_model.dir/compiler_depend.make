# Empty compiler generated dependencies file for thistle_model.
# This may be replaced when dependencies are built.
