//===- thistle/PairSweep.h - Shared perm-class pair sweep core --*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The perm-class pair sweep factored out of optimizeLayer so the
/// network driver (thistle/Network.cpp) can fan the tasks of many layers
/// into one global grid: the fixed sweep plan (enumeration, symmetry
/// pruning, pair cap), the per-task solve chain (build -> retry-ladder
/// solve -> halo fallback -> optional cached warm-start recovery ->
/// extract -> round), the deterministic shard accumulator, and the
/// result assembly. optimizeLayer is a thin wrapper around these pieces;
/// their behavior on a single layer is bit-identical to the
/// pre-refactoring implementation.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_THISTLE_PAIRSWEEP_H
#define THISTLE_THISTLE_PAIRSWEEP_H

#include "thistle/GpCache.h"
#include "thistle/Optimizer.h"
#include "thistle/PermutationSpace.h"

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace thistle {

/// One (PE-perm, DRAM-perm) class pair scheduled for a GP solve.
struct PairTask {
  std::size_t QI, SI;
};

/// The fixed plan of one layer's pair sweep, computed serially before
/// fan-out so the parallel sweep solves exactly the sequential pair set.
struct LayerSweepPlan {
  std::vector<unsigned> TiledIters;
  std::vector<PermClass> Classes;
  std::vector<PairTask> Pairs;
  unsigned PairsTotal = 0;
  unsigned PairsSkippedBySymmetry = 0;
  unsigned RawPermsPerLevel = 0;
  /// Pairs dropped by Options.MaxPermClassPairs, pre-recorded as policy
  /// skips with task indices following the planned tasks; merged into
  /// the sweep report after the fan-out so outcome counts sum to
  /// PairsTotal - PairsSkippedBySymmetry at any cap.
  SweepReport CappedReport;
};

/// Tiled iterators of \p Prob: extent > 1 and not in the untiled list.
std::vector<unsigned> tiledIterators(const Problem &Prob,
                                     const ThistleOptions &Options);

/// Enumerates, prunes and caps the pair tasks for \p Prob.
LayerSweepPlan planLayerSweep(const Problem &Prob,
                              const ThistleOptions &Options);

/// Per-shard sweep state: the best design seen by one worker plus its
/// stat deltas. Shards never share state on the hot path; accumulators
/// are merged in shard order once the sweep drains.
struct SweepAccumulator {
  bool Found = false;
  double Obj = 0.0;
  std::size_t QI = 0, SI = 0;
  RoundedDesign Design;
  double ModelObjective = 0.0;
  unsigned NewtonIterations = 0;
  unsigned GpInfeasible = 0;
  std::size_t CandidatesEvaluated = 0;
  std::uint64_t CacheHits = 0, CacheMisses = 0, CacheWarmStarts = 0;
  SweepReport Report;
};

/// Everything one pair task reads; const-shared across workers.
struct PairSweepContext {
  const Problem &Prob;
  const LayerSweepPlan &Plan;
  const ThistleOptions &Options;
  const ArchConfig &Arch;
  const TechParams &Tech;
  double AreaBudgetUm2 = 0.0;
  /// Optional shared solution cache (see thistle/GpCache.h).
  GpSolutionCache *Cache = nullptr;
  bool HasDeadline = false;
  std::chrono::steady_clock::time_point DeadlineAt;
  /// Added to the task index for telemetry span indexing, so several
  /// layer sweeps sharing one epoch (the network driver) keep globally
  /// ordered span indices.
  std::size_t SpanIndexBase = 0;
};

/// Runs one planned pair task end to end, folding its outcome into
/// \p Acc. Never throws: failures become report incidents.
void runPairTask(const PairSweepContext &Ctx, std::size_t TaskIdx,
                 SweepAccumulator &Acc);

/// The deterministic winner order: lexicographic on (objective, QI, SI).
bool pairWinsOver(double Obj, std::size_t QI, std::size_t SI,
                  const SweepAccumulator &Acc);

/// Joins the next shard (ascending task order) into \p A.
void mergePairAccumulators(SweepAccumulator &A, SweepAccumulator &&B);

/// Resolves the two deadline options into one absolute instant; false
/// when no deadline is configured.
bool resolveSweepDeadline(std::chrono::milliseconds Relative,
                          std::chrono::steady_clock::time_point Absolute,
                          std::chrono::steady_clock::time_point &Out);

/// Assembles a ThistleResult from a drained sweep: stats (PairsSolved
/// derived from the report outcomes), the merged report including the
/// plan's capped-pair skips, and the winning design.
void finishLayerResult(const LayerSweepPlan &Plan, SweepAccumulator &&Total,
                       ThistleResult &Result);

} // namespace thistle

#endif // THISTLE_THISTLE_PAIRSWEEP_H
