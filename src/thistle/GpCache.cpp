//===- thistle/GpCache.cpp - GP solution cache for network sweeps ---------===//

#include "thistle/GpCache.h"

#include "support/Telemetry.h"
#include "thistle/Optimizer.h"

#include <cstdio>

using namespace thistle;
using persist::Decoder;
using persist::Encoder;

namespace {

/// Canonical double rendering for key material: round-trippable and
/// locale-independent.
void appendNumber(std::string &Out, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
  Out += ',';
}

void appendNumber(std::string &Out, std::int64_t V) {
  Out += std::to_string(V);
  Out += ',';
}

void appendIndices(std::string &Out, const std::vector<unsigned> &V) {
  for (unsigned I : V) {
    Out += std::to_string(I);
    Out += '.';
  }
  Out += ',';
}

/// The on-disk kind tag shared by cache snapshots and journals.
constexpr const char *CacheKind = "gpcache";

void putPerm(Encoder &E, const std::vector<unsigned> &Perm) {
  E.putU64(Perm.size());
  for (unsigned I : Perm)
    E.putU32(I);
}

bool getPerm(Decoder &D, std::vector<unsigned> &Perm) {
  std::uint64_t Count;
  if (!D.getU64(Count) || Count > D.remaining() / 4)
    return false;
  Perm.resize(static_cast<std::size_t>(Count));
  for (unsigned &I : Perm)
    if (!D.getU32(I))
      return false;
  return true;
}

/// One exact-tier entry, keys included, as a self-contained payload.
/// The same encoding serves whole-cache snapshots (concatenated
/// entries) and journals (one entry per record).
std::string encodeEntry(const std::string &Key, const std::string &WarmKey,
                        const GpCacheEntry &Entry) {
  Encoder E;
  E.putString(Key);
  E.putString(WarmKey);
  E.putU32(static_cast<std::uint32_t>(Entry.Outcome));
  E.putU32(Entry.Attempts);
  E.putString(Entry.Detail);
  E.putU32(Entry.NewtonIterations);
  E.putBool(Entry.GpInfeasible);

  const RoundedDesign &D = Entry.Design;
  E.putBool(D.Found);
  E.putI64(D.Arch.NumPEs);
  E.putI64(D.Arch.RegWordsPerPE);
  E.putI64(D.Arch.SramWords);
  E.putDouble(D.Arch.DramBandwidth);
  E.putDouble(D.Arch.SramBandwidth);
  E.putU64(D.Map.Factors.size());
  for (const auto &Level : D.Map.Factors)
    for (std::int64_t F : Level)
      E.putI64(F);
  putPerm(E, D.Map.DramPerm);
  putPerm(E, D.Map.PePerm);
  E.putBool(D.Eval.Legal);
  E.putString(D.Eval.IllegalReason);
  E.putDouble(D.Eval.EnergyPj);
  E.putDouble(D.Eval.EnergyPerMacPj);
  E.putDouble(D.Eval.MacEnergyPj);
  E.putDouble(D.Eval.RegEnergyPj);
  E.putDouble(D.Eval.SramEnergyPj);
  E.putDouble(D.Eval.DramEnergyPj);
  E.putDouble(D.Eval.EdpPjCycles);
  E.putDouble(D.Eval.Cycles);
  E.putDouble(D.Eval.ComputeCycles);
  E.putDouble(D.Eval.DramCycles);
  E.putDouble(D.Eval.SramCycles);
  E.putDouble(D.Eval.MacIpc);
  E.putU64(D.Eval.Profile.PerTensor.size());
  for (const TensorVolumes &V : D.Eval.Profile.PerTensor) {
    E.putI64(V.DramToSram);
    E.putI64(V.SramToDram);
    E.putI64(V.SramToReg);
    E.putI64(V.RegToSram);
  }
  E.putI64(D.Eval.Profile.RegTileWords);
  E.putI64(D.Eval.Profile.SramTileWords);
  E.putI64(D.Eval.Profile.PEsUsed);
  E.putU64(D.CandidatesTried);

  E.putDouble(Entry.Obj);
  E.putDouble(Entry.ModelObjective);
  E.putU64(Entry.Optimum.size());
  for (double V : Entry.Optimum)
    E.putDouble(V);
  return E.takeBytes();
}

bool decodeEntry(Decoder &D, std::string &Key, std::string &WarmKey,
                 GpCacheEntry &Entry) {
  std::uint32_t Outcome;
  if (!D.getString(Key) || !D.getString(WarmKey) || !D.getU32(Outcome) ||
      Outcome > static_cast<std::uint32_t>(TaskOutcome::Skipped))
    return false;
  Entry.Outcome = static_cast<TaskOutcome>(Outcome);
  if (!D.getU32(Entry.Attempts) || !D.getString(Entry.Detail) ||
      !D.getU32(Entry.NewtonIterations) || !D.getBool(Entry.GpInfeasible))
    return false;

  RoundedDesign &R = Entry.Design;
  if (!D.getBool(R.Found) || !D.getI64(R.Arch.NumPEs) ||
      !D.getI64(R.Arch.RegWordsPerPE) || !D.getI64(R.Arch.SramWords) ||
      !D.getDouble(R.Arch.DramBandwidth) ||
      !D.getDouble(R.Arch.SramBandwidth))
    return false;
  std::uint64_t Iters;
  if (!D.getU64(Iters) || Iters > D.remaining() / (8 * NumTileLevels))
    return false;
  R.Map.Factors.resize(static_cast<std::size_t>(Iters));
  for (auto &Level : R.Map.Factors)
    for (std::int64_t &F : Level)
      if (!D.getI64(F))
        return false;
  if (!getPerm(D, R.Map.DramPerm) || !getPerm(D, R.Map.PePerm))
    return false;
  if (!D.getBool(R.Eval.Legal) || !D.getString(R.Eval.IllegalReason) ||
      !D.getDouble(R.Eval.EnergyPj) || !D.getDouble(R.Eval.EnergyPerMacPj) ||
      !D.getDouble(R.Eval.MacEnergyPj) || !D.getDouble(R.Eval.RegEnergyPj) ||
      !D.getDouble(R.Eval.SramEnergyPj) ||
      !D.getDouble(R.Eval.DramEnergyPj) ||
      !D.getDouble(R.Eval.EdpPjCycles) || !D.getDouble(R.Eval.Cycles) ||
      !D.getDouble(R.Eval.ComputeCycles) ||
      !D.getDouble(R.Eval.DramCycles) || !D.getDouble(R.Eval.SramCycles) ||
      !D.getDouble(R.Eval.MacIpc))
    return false;
  std::uint64_t Tensors;
  if (!D.getU64(Tensors) || Tensors > D.remaining() / 32)
    return false;
  R.Eval.Profile.PerTensor.resize(static_cast<std::size_t>(Tensors));
  for (TensorVolumes &V : R.Eval.Profile.PerTensor)
    if (!D.getI64(V.DramToSram) || !D.getI64(V.SramToDram) ||
        !D.getI64(V.SramToReg) || !D.getI64(V.RegToSram))
      return false;
  std::uint64_t Tried;
  if (!D.getI64(R.Eval.Profile.RegTileWords) ||
      !D.getI64(R.Eval.Profile.SramTileWords) ||
      !D.getI64(R.Eval.Profile.PEsUsed) || !D.getU64(Tried))
    return false;
  R.CandidatesTried = static_cast<std::size_t>(Tried);

  std::uint64_t Dims;
  if (!D.getDouble(Entry.Obj) || !D.getDouble(Entry.ModelObjective) ||
      !D.getU64(Dims) || Dims > D.remaining() / 8)
    return false;
  Entry.Optimum.resize(static_cast<std::size_t>(Dims));
  for (double &V : Entry.Optimum)
    if (!D.getDouble(V))
      return false;
  return true;
}

bool endsWith(const std::string &S, const char *Suffix) {
  const std::size_t N = std::char_traits<char>::length(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

} // namespace

GpCacheKeys thistle::gpCacheKeys(const Problem &Prob,
                                 const ThistleOptions &Options,
                                 const ArchConfig &Arch,
                                 const TechParams &Tech,
                                 double AreaBudgetUm2,
                                 const std::vector<unsigned> &TiledIters,
                                 const std::vector<unsigned> &PePerm,
                                 const std::vector<unsigned> &DramPerm) {
  // Structural part, shared by both keys: iterator names, tensor
  // skeleton (which iterators project into which dimension), perms and
  // the mode/objective/options that shape the generated program. The
  // problem *name* is excluded on purpose: identically shaped layers of
  // different networks must share entries.
  std::string S;
  S.reserve(256);
  S += "it:";
  for (const Iterator &It : Prob.iterators()) {
    S += It.Name;
    S += ',';
  }
  S += "|tn:";
  for (const Tensor &T : Prob.tensors()) {
    S += T.Name;
    S += T.ReadWrite ? "+rw" : "";
    for (const DimRef &D : T.Dims) {
      S += '[';
      for (const DimRef::Term &Term : D.Terms) {
        S += std::to_string(Term.Iter);
        S += ';';
      }
      S += ']';
    }
    S += ',';
  }
  S += "|opt:";
  S += Options.Mode == DesignMode::CoDesign ? "codesign" : "dataflow";
  S += ',';
  S += Options.Objective == SearchObjective::Energy  ? "energy"
       : Options.Objective == SearchObjective::Delay ? "delay"
                                                     : "edp";
  S += Options.SpatialUntiled ? ",su1," : ",su0,";
  S += "tiled:";
  appendIndices(S, TiledIters);
  S += "q:";
  appendIndices(S, PePerm);
  S += "s:";
  appendIndices(S, DramPerm);

  // Numeric part, exact key only: extents, projection strides, the
  // architecture/technology constants and every option that changes the
  // solve or rounding trajectory.
  std::string N = "|ext:";
  for (const Iterator &It : Prob.iterators())
    appendNumber(N, It.Extent);
  N += "str:";
  for (const Tensor &T : Prob.tensors())
    for (const DimRef &D : T.Dims)
      for (const DimRef::Term &Term : D.Terms)
        appendNumber(N, Term.Stride);
  N += "arch:";
  appendNumber(N, Arch.NumPEs);
  appendNumber(N, Arch.RegWordsPerPE);
  appendNumber(N, Arch.SramWords);
  appendNumber(N, Arch.DramBandwidth);
  appendNumber(N, Arch.SramBandwidth);
  N += "tech:";
  appendNumber(N, Tech.AreaMacUm2);
  appendNumber(N, Tech.AreaRegWordUm2);
  appendNumber(N, Tech.AreaSramWordUm2);
  appendNumber(N, Tech.EnergyMacPj);
  appendNumber(N, Tech.SigmaRegPj);
  appendNumber(N, Tech.SigmaSramPj);
  appendNumber(N, Tech.EnergyDramPj);
  N += "area:";
  appendNumber(N, AreaBudgetUm2);
  N += "round:";
  appendNumber(N, static_cast<std::int64_t>(Options.Rounding.NumCandidates));
  appendNumber(N, Options.Rounding.UtilizationThreshold);
  appendNumber(N, static_cast<std::int64_t>(
                      Options.Rounding.MaxMappingCandidates));
  N += "solver:";
  appendNumber(N, Options.Solver.Tolerance);
  appendNumber(N, Options.Solver.TInitial);
  appendNumber(N, Options.Solver.TMultiplier);
  appendNumber(N, static_cast<std::int64_t>(Options.Solver.MaxNewtonIters));
  appendNumber(N, static_cast<std::int64_t>(Options.Solver.MaxOuterIters));
  appendNumber(N, Options.Solver.StartPerturbation);
  appendNumber(N, Options.Solver.ObjectiveScale);
  appendNumber(N, static_cast<std::int64_t>(Options.Solver.MaxSolveAttempts));

  GpCacheKeys Keys;
  Keys.Warm = S;
  Keys.Exact = std::move(S) + N;
  return Keys;
}

bool GpSolutionCache::lookupExact(const std::string &Key,
                                  GpCacheEntry &Out) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Exact.find(Key);
    if (It != Exact.end()) {
      Out = It->second.Entry;
      Recency.splice(Recency.begin(), Recency, It->second.Where);
      Hits.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void GpSolutionCache::feedWarmPendingLocked(
    const std::string &Key, const std::string &WarmKey,
    const std::vector<double> &Optimum) {
  if (Optimum.empty())
    return;
  WarmSlot &Slot = Warm[WarmKey];
  // Deterministic pending winner: smallest exact key, not first
  // arrival — parallel fill order must not leak into later phases.
  if (!Slot.HasPending || Key < Slot.PendingSource) {
    Slot.HasPending = true;
    Slot.PendingSource = Key;
    Slot.Pending = Optimum;
  }
}

bool GpSolutionCache::insertExactLocked(const std::string &Key,
                                        const std::string &WarmKey,
                                        GpCacheEntry Entry) {
  auto [It, Inserted] = Exact.try_emplace(Key);
  if (!Inserted)
    return false; // Existing entries win (they are identical by key).
  Recency.push_front(Key);
  It->second.Entry = std::move(Entry);
  It->second.WarmKey = WarmKey;
  It->second.Where = Recency.begin();
  while (MaxEntries != 0 && Exact.size() > MaxEntries) {
    Exact.erase(Recency.back());
    Recency.pop_back();
    Evictions.fetch_add(1, std::memory_order_relaxed);
    telemetry::count("thistle.cache.evictions");
  }
  return true;
}

void GpSolutionCache::insert(const std::string &Key,
                             const std::string &WarmKey,
                             GpCacheEntry Entry) {
  std::lock_guard<std::mutex> Lock(Mutex);
  feedWarmPendingLocked(Key, WarmKey, Entry.Optimum);
  // Journal before the move; only genuinely new entries are appended
  // (a dropped append is counted, never fails the insert — the entry
  // just re-solves after a crash).
  if (Journal.isOpen() && Exact.find(Key) == Exact.end() &&
      !Journal.append(encodeEntry(Key, WarmKey, Entry)))
    JournalFailures.fetch_add(1, std::memory_order_relaxed);
  insertExactLocked(Key, WarmKey, std::move(Entry));
}

void GpSolutionCache::feedWarmPending(const std::string &Key,
                                      const std::string &WarmKey,
                                      const std::vector<double> &Optimum) {
  std::lock_guard<std::mutex> Lock(Mutex);
  feedWarmPendingLocked(Key, WarmKey, Optimum);
}

bool GpSolutionCache::lookupWarm(const std::string &WarmKey,
                                 std::vector<double> &Out) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Warm.find(WarmKey);
  if (It == Warm.end() || !It->second.HasFrozen)
    return false;
  Out = It->second.Frozen;
  return true;
}

void GpSolutionCache::noteWarmStart() {
  WarmStarts.fetch_add(1, std::memory_order_relaxed);
}

void GpSolutionCache::beginGeneration() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[Key, Slot] : Warm) {
    if (!Slot.HasPending)
      continue;
    Slot.HasFrozen = true;
    Slot.Frozen = std::move(Slot.Pending);
    Slot.HasPending = false;
    Slot.PendingSource.clear();
    Slot.Pending.clear();
  }
}

void GpSolutionCache::setCapacity(std::size_t Max) {
  std::lock_guard<std::mutex> Lock(Mutex);
  MaxEntries = Max;
  while (MaxEntries != 0 && Exact.size() > MaxEntries) {
    Exact.erase(Recency.back());
    Recency.pop_back();
    Evictions.fetch_add(1, std::memory_order_relaxed);
    telemetry::count("thistle.cache.evictions");
  }
}

std::size_t GpSolutionCache::capacity() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return MaxEntries;
}

Status GpSolutionCache::saveSnapshotFile(const std::string &Path) const {
  std::string Payload;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    // LRU-first: a sequential reload push-fronts each entry, so the
    // last one written (the MRU) ends up back at the front.
    for (auto It = Recency.rbegin(); It != Recency.rend(); ++It) {
      const ExactSlot &Slot = Exact.at(*It);
      Encoder E;
      E.putString(encodeEntry(*It, Slot.WarmKey, Slot.Entry));
      Payload += E.takeBytes();
    }
  }
  return persist::writeSnapshotFile(Path, CacheKind, Payload);
}

void GpSolutionCache::loadFile(const std::string &Path,
                               GpCachePersistStats &Stats) {
  auto noteDamage = [&](const std::string &Problem) {
    ++Stats.DataLoss;
    Stats.Problems.push_back(Problem);
  };
  auto loadOne = [&](std::string_view Bytes) {
    Decoder D(Bytes);
    std::string Key, WarmKey;
    GpCacheEntry Entry;
    if (!decodeEntry(D, Key, WarmKey, Entry) || !D.atEnd())
      return false;
    std::lock_guard<std::mutex> Lock(Mutex);
    if (insertExactLocked(Key, WarmKey, std::move(Entry)))
      ++Stats.EntriesLoaded;
    return true;
  };

  if (endsWith(Path, ".snap")) {
    Expected<std::string> Payload =
        persist::readSnapshotFile(Path, CacheKind);
    if (!Payload) {
      if (Payload.status().code() != StatusCode::NotFound)
        noteDamage(Payload.status().toString());
      return;
    }
    ++Stats.FilesLoaded;
    // Entries are framed as length-prefixed strings; on the first
    // undecodable one, keep the intact prefix and report the rest lost
    // (should not happen — the CRC already passed — but a decode bug
    // must degrade, not crash).
    Decoder Frames(Payload.value());
    std::string Bytes;
    while (!Frames.atEnd()) {
      if (!Frames.getString(Bytes) || !loadOne(Bytes)) {
        noteDamage("'" + Path + "': undecodable entry after " +
                   std::to_string(Stats.EntriesLoaded) +
                   " intact entries; dropping the rest");
        return;
      }
    }
    return;
  }

  Expected<persist::JournalContents> Contents =
      persist::readJournalFile(Path, CacheKind);
  if (!Contents) {
    if (Contents.status().code() != StatusCode::NotFound)
      noteDamage(Contents.status().toString());
    return;
  }
  ++Stats.FilesLoaded;
  if (Contents.value().Truncated)
    noteDamage(Contents.value().Problem);
  for (const std::string &Record : Contents.value().Records) {
    ++Stats.RecordsRead;
    if (!loadOne(Record)) {
      noteDamage("'" + Path + "': undecodable record after " +
                 std::to_string(Stats.EntriesLoaded) +
                 " intact entries; dropping the rest");
      return;
    }
  }
}

Status GpSolutionCache::attachJournal(const std::string &Path) {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Journal.open(Path, CacheKind);
}

void GpSolutionCache::detachJournal() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Journal.close();
}

std::size_t GpSolutionCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Exact.size();
}

void GpSolutionCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Exact.clear();
  Recency.clear();
  Warm.clear();
}
