file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_delay_codesign.dir/bench_fig8_delay_codesign.cpp.o"
  "CMakeFiles/bench_fig8_delay_codesign.dir/bench_fig8_delay_codesign.cpp.o.d"
  "bench_fig8_delay_codesign"
  "bench_fig8_delay_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_delay_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
