//===- tests/ServeEngineTest.cpp - ServeEngine + JSON parser tests --------===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
//
// The serving contracts of docs/SERVING.md, below the socket layer:
// handleLine() responses for good, bad, and degraded requests; the
// byte-identity of a query's report across cold cache, hot cache, a
// disk round-trip and racing identical requests (which must collapse
// onto one solve); and the line-JSON parser the protocol rests on.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "thistle/ServeEngine.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace thistle;

namespace {

//===----------------------------------------------------------------------===//
// Json parser
//===----------------------------------------------------------------------===//

TEST(Json, ParsesScalarsAndStructure) {
  Expected<json::JsonValue> V =
      json::parseJson("{\"a\":[1,2.5,-3],\"b\":{\"c\":true,\"d\":null},"
                      "\"e\":\"x\\ny\"}");
  ASSERT_TRUE(V);
  const json::JsonValue *A = V.value().find("a");
  ASSERT_NE(A, nullptr);
  ASSERT_EQ(A->array().size(), 3u);
  EXPECT_EQ(A->array()[0].number(), 1.0);
  EXPECT_EQ(A->array()[1].number(), 2.5);
  EXPECT_EQ(A->array()[2].number(), -3.0);
  const json::JsonValue *B = V.value().find("b");
  ASSERT_NE(B, nullptr);
  EXPECT_TRUE(B->find("c")->boolean());
  EXPECT_TRUE(B->find("d")->isNull());
  EXPECT_EQ(V.value().find("e")->string(), "x\ny");
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_FALSE(json::parseJson(""));
  EXPECT_FALSE(json::parseJson("{"));
  EXPECT_FALSE(json::parseJson("{\"a\":}"));
  EXPECT_FALSE(json::parseJson("[1,]"));
  EXPECT_FALSE(json::parseJson("01"));
  EXPECT_FALSE(json::parseJson("nul"));
  EXPECT_FALSE(json::parseJson("{} trailing"));
  EXPECT_FALSE(json::parseJson("\"unterminated"));
}

TEST(Json, ExactIntegerExtraction) {
  Expected<json::JsonValue> V = json::parseJson("[7, 7.5, -1, 1e3]");
  ASSERT_TRUE(V);
  std::uint64_t N = 0;
  EXPECT_TRUE(V.value().array()[0].asUint(N));
  EXPECT_EQ(N, 7u);
  EXPECT_FALSE(V.value().array()[1].asUint(N)); // Not an integer.
  EXPECT_FALSE(V.value().array()[2].asUint(N)); // Negative.
  EXPECT_TRUE(V.value().array()[3].asUint(N));  // 1e3 is exactly 1000.
  EXPECT_EQ(N, 1000u);
}

TEST(Json, DepthBounded) {
  std::string Deep(100, '[');
  Deep += std::string(100, ']');
  EXPECT_FALSE(json::parseJson(Deep));
}

//===----------------------------------------------------------------------===//
// ServeEngine
//===----------------------------------------------------------------------===//

/// A tiny query so tests solve in well under a second.
const char *LayerQuery =
    "{\"schema\":\"thistle-serve/1\",\"id\":1,\"query\":{\"workload\":"
    "{\"layer\":[16,8,14,14,3,3]}}}";

/// Extracts the deterministic prefix of a response: everything before
/// the per-request `server` section.
std::string deterministicPrefix(const std::string &Resp) {
  std::size_t Pos = Resp.rfind(",\"server\":");
  EXPECT_NE(Pos, std::string::npos) << Resp;
  return Resp.substr(0, Pos) + "}";
}

/// Pulls a "key":value scalar out of the response's server section
/// (good enough for counters in a test).
std::uint64_t serverCacheCounter(const std::string &Resp,
                                 const std::string &Key) {
  std::size_t Server = Resp.rfind("\"server\":");
  EXPECT_NE(Server, std::string::npos);
  std::size_t Pos = Resp.find("\"" + Key + "\":", Server);
  EXPECT_NE(Pos, std::string::npos);
  return std::strtoull(Resp.c_str() + Pos + Key.size() + 3, nullptr, 10);
}

TEST(ServeEngine, AnswersPingAndRejectsGarbage) {
  ServeEngine Engine{ServeOptions{}};
  ASSERT_TRUE(Engine.start().isOk());

  std::string Pong = Engine.handleLine("{\"cmd\":\"ping\",\"id\":\"p\"}");
  EXPECT_NE(Pong.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(Pong.find("\"id\":\"p\""), std::string::npos);

  // Malformed JSON and malformed requests get error envelopes — the
  // connection-level contract is "never crash, never disconnect".
  for (const char *Bad :
       {"not json at all", "[1,2,3]", "{\"schema\":\"bogus/9\"}",
        "{\"schema\":\"thistle-serve/1\"}",
        "{\"schema\":\"thistle-serve/1\",\"query\":{}}",
        "{\"schema\":\"thistle-serve/1\",\"query\":{\"workload\":"
        "{\"layer\":[0,0,0,0,0,0]}}}",
        "{\"schema\":\"thistle-serve/1\",\"query\":{\"workload\":"
        "{\"resnet\":99}}}",
        "{\"schema\":\"thistle-serve/1\",\"query\":{\"workload\":"
        "{\"layer\":[16,8,14,14,3,3]},\"deadline\":5}}"}) {
    std::string Resp = Engine.handleLine(Bad);
    EXPECT_NE(Resp.find("\"status\":\"invalid\""), std::string::npos)
        << Bad << " -> " << Resp;
    EXPECT_NE(Resp.find("\"exit_code\":2"), std::string::npos) << Bad;
    EXPECT_NE(Resp.find("\"report\":null"), std::string::npos) << Bad;
  }

  ServeStats S = Engine.stats();
  EXPECT_EQ(S.Requests, 9u);
  EXPECT_EQ(S.Errors, 8u);
  EXPECT_EQ(S.Queries, 0u); // None of the errors was admitted.
  Engine.shutdown();
}

TEST(ServeEngine, ColdHotAndReloadedAreByteIdentical) {
  std::string Dir = ::testing::TempDir() + "/serve-reload";
  std::remove((Dir + "/gpcache.snap").c_str());
  std::remove((Dir + "/gpcache.journal").c_str());

  std::string Cold, Hot;
  {
    ServeOptions SO;
    SO.CacheDir = Dir;
    ServeEngine Engine{SO};
    ASSERT_TRUE(Engine.start().isOk());
    Cold = Engine.handleLine(LayerQuery);
    Hot = Engine.handleLine(LayerQuery);
    Engine.shutdown();
  }
  EXPECT_NE(Cold.find("\"status\":\"ok\""), std::string::npos) << Cold;
  EXPECT_EQ(deterministicPrefix(Cold), deterministicPrefix(Hot));
  // The hot answer replayed from the exact tier: no misses.
  EXPECT_GT(serverCacheCounter(Cold, "miss"), 0u);
  EXPECT_EQ(serverCacheCounter(Hot, "miss"), 0u);
  EXPECT_GT(serverCacheCounter(Hot, "hit"), 0u);

  // A fresh engine over the same directory replays from disk.
  {
    ServeOptions SO;
    SO.CacheDir = Dir;
    ServeEngine Engine{SO};
    ASSERT_TRUE(Engine.start().isOk());
    std::string Reloaded = Engine.handleLine(LayerQuery);
    EXPECT_EQ(deterministicPrefix(Cold), deterministicPrefix(Reloaded));
    EXPECT_EQ(serverCacheCounter(Reloaded, "miss"), 0u);
    Engine.shutdown();
  }
}

TEST(ServeEngine, ConcurrentIdenticalQueriesDedupToOneSolve) {
  ServeEngine Engine{ServeOptions{}};
  ASSERT_TRUE(Engine.start().isOk());

  // Hold the solver so every request is admitted while the first job
  // is still in flight — the dedup join is then deterministic, not a
  // race the test might lose.
  Engine.setHoldForTest(true);
  constexpr int N = 8;
  std::vector<std::string> Responses(N);
  std::vector<std::thread> Threads;
  for (int I = 0; I < N; ++I)
    Threads.emplace_back(
        [&, I] { Responses[I] = Engine.handleLine(LayerQuery); });
  // Wait until every request has been admitted (one creator queued,
  // N-1 joins recorded) before releasing the solver, so no request can
  // arrive late and start a second solve.
  while (Engine.queuedForTest() < 1 ||
         Engine.stats().Deduplicated < static_cast<std::uint64_t>(N - 1))
    std::this_thread::yield();
  Engine.setHoldForTest(false);
  for (std::thread &T : Threads)
    T.join();

  ServeStats S = Engine.stats();
  EXPECT_EQ(S.Queries, static_cast<std::uint64_t>(N));
  EXPECT_EQ(S.Solves, 1u);
  EXPECT_EQ(S.Deduplicated, static_cast<std::uint64_t>(N - 1));
  std::uint64_t CounterSum = 0;
  for (const std::string &R : Responses) {
    EXPECT_EQ(deterministicPrefix(R), deterministicPrefix(Responses[0]));
    CounterSum += serverCacheCounter(R, "miss");
  }
  // Exactly one response (the creator's) carries the solve's cache
  // traffic; joiners report zeros, so the sum matches the totals.
  EXPECT_EQ(CounterSum, S.CacheMisses);
  Engine.shutdown();
}

TEST(ServeEngine, ExpiredDeadlineDegradesInsteadOfCrashing) {
  ServeEngine Engine{ServeOptions{}};
  ASSERT_TRUE(Engine.start().isOk());
  // A 1ms budget expires before (or just after) the sweep starts: the
  // response must come back degraded or no-design, never crash — and
  // never poison the cache for an unlimited rerun of the same layer.
  std::string Resp = Engine.handleLine(
      "{\"schema\":\"thistle-serve/1\",\"id\":7,\"query\":{\"workload\":"
      "{\"layer\":[16,8,14,14,3,3]},\"deadline_ms\":1}}");
  bool Degraded =
      Resp.find("\"status\":\"degraded\"") != std::string::npos ||
      Resp.find("\"status\":\"no-design\"") != std::string::npos ||
      Resp.find("\"status\":\"ok\"") != std::string::npos;
  EXPECT_TRUE(Degraded) << Resp;

  // The unlimited query is a different dedup/cache story: it must
  // still produce the full clean answer.
  std::string Full = Engine.handleLine(LayerQuery);
  EXPECT_NE(Full.find("\"status\":\"ok\""), std::string::npos) << Full;
  EXPECT_NE(Full.find("\"deadline_expired\":false"), std::string::npos);
  Engine.shutdown();
}

TEST(ServeEngine, ShutdownReportMatchesStats) {
  ServeEngine Engine{ServeOptions{}};
  ASSERT_TRUE(Engine.start().isOk());
  Engine.handleLine(LayerQuery);
  Engine.handleLine(LayerQuery);
  Engine.handleLine("garbage");
  Engine.shutdown();

  ServeStats S = Engine.stats();
  RunReport RR;
  Engine.fillReport(RR);
  EXPECT_TRUE(RR.Serve.Present);
  EXPECT_EQ(RR.Serve.Requests, S.Requests);
  EXPECT_EQ(RR.Serve.Queries, 2u);
  EXPECT_EQ(RR.Serve.Errors, 1u);
  // Both queries ran a solver job; the second replayed from the exact
  // tier inside its job (hits > 0, misses unchanged).
  EXPECT_EQ(RR.Serve.Solves, 2u);
  EXPECT_GT(RR.Serve.CacheHits, 0u);
  EXPECT_EQ(RR.Serve.CacheHits, S.CacheHits);
  EXPECT_EQ(RR.Serve.CacheMisses, S.CacheMisses);
  EXPECT_FALSE(RR.Persistence.Present); // No cache directory given.

  // The serve section shows up in the serialized report.
  EXPECT_NE(RR.toJson().find("\"serve\""), std::string::npos);
}

TEST(ServeEngine, ObjectFormLayerParsesGeneralConvModifiers) {
  ServeEngine Engine{ServeOptions{}};
  ASSERT_TRUE(Engine.start().isOk());

  // Array and object forms of the same dense layer share a dedup key;
  // the depthwise/transposed/valid-padding variants must not.
  const char *Forms[] = {
      "{\"schema\":\"thistle-serve/1\",\"id\":1,\"query\":{\"workload\":"
      "{\"layer\":{\"dims\":[8,8,10,10,3,3]}}}}",
      "{\"schema\":\"thistle-serve/1\",\"id\":2,\"query\":{\"workload\":"
      "{\"layer\":{\"dims\":[8,8,10,10,3,3],\"groups\":8}}}}",
      "{\"schema\":\"thistle-serve/1\",\"id\":3,\"query\":{\"workload\":"
      "{\"layer\":{\"dims\":[8,8,10,10,3,3],\"transposed\":true}}}}",
      "{\"schema\":\"thistle-serve/1\",\"id\":4,\"query\":{\"workload\":"
      "{\"layer\":{\"dims\":[8,8,10,10,3,3],\"padding\":\"valid\"}}}}"};
  for (const char *Q : Forms) {
    std::string Resp = Engine.handleLine(Q);
    EXPECT_NE(Resp.find("\"status\":\"ok\""), std::string::npos)
        << Q << " -> " << Resp;
  }
  // Four distinct workloads -> four solver jobs, no false sharing.
  EXPECT_EQ(Engine.stats().Solves, 4u);

  // The plain array form replays the object-form dense solve from the
  // exact cache tier: same workload, same key.
  std::uint64_t HitsBefore = Engine.stats().CacheHits;
  std::string Arr = Engine.handleLine(
      "{\"schema\":\"thistle-serve/1\",\"id\":5,\"query\":{\"workload\":"
      "{\"layer\":[8,8,10,10,3,3]}}}");
  EXPECT_NE(Arr.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_GT(Engine.stats().CacheHits, HitsBefore);
  Engine.shutdown();
}

TEST(ServeEngine, GeneralConvValidationUsesTheErrorEnvelope) {
  ServeEngine Engine{ServeOptions{}};
  ASSERT_TRUE(Engine.start().isOk());
  struct Case {
    const char *Query;
    const char *Needle;
  } Cases[] = {
      // 8 channels are not divisible into 3 groups.
      {"{\"schema\":\"thistle-serve/1\",\"query\":{\"workload\":"
       "{\"layer\":{\"dims\":[8,8,10,10,3,3],\"groups\":3}}}}",
       "divisible"},
      // Dilation 0 in the long array form.
      {"{\"schema\":\"thistle-serve/1\",\"query\":{\"workload\":"
       "{\"layer\":[8,8,10,10,3,3,1,0]}}}",
       "positive"},
      // Unknown padding token.
      {"{\"schema\":\"thistle-serve/1\",\"query\":{\"workload\":"
       "{\"layer\":{\"dims\":[8,8,10,10,3,3],\"padding\":\"diagonal\"}}}}",
       "padding"},
      // Unknown field in the layer object (strict parsing).
      {"{\"schema\":\"thistle-serve/1\",\"query\":{\"workload\":"
       "{\"layer\":{\"dims\":[8,8,10,10,3,3],\"dilated\":true}}}}",
       "layer"}};
  for (const Case &C : Cases) {
    std::string Resp = Engine.handleLine(C.Query);
    EXPECT_NE(Resp.find("\"status\":\"invalid\""), std::string::npos)
        << C.Query << " -> " << Resp;
    EXPECT_NE(Resp.find("\"exit_code\":2"), std::string::npos) << C.Query;
    EXPECT_NE(Resp.find(C.Needle), std::string::npos) << Resp;
  }
  EXPECT_EQ(Engine.stats().Queries, 0u); // None admitted.
  Engine.shutdown();
}

TEST(ServeEngine, NewNetworkNamesAreAdmitted) {
  ServeEngine Engine{ServeOptions{}};
  ASSERT_TRUE(Engine.start().isOk());
  // A 1ms deadline keeps these from running the full sweeps; the point
  // is that the names parse (degraded/no-design/ok — never invalid).
  for (const char *Net : {"mobilenetv2", "dcgan"}) {
    std::string Resp = Engine.handleLine(
        std::string("{\"schema\":\"thistle-serve/1\",\"query\":{\"workload\":"
                    "{\"network\":\"") +
        Net + "\"},\"deadline_ms\":1}}");
    EXPECT_EQ(Resp.find("\"status\":\"invalid\""), std::string::npos)
        << Net << " -> " << Resp;
  }
  std::string Bad = Engine.handleLine(
      "{\"schema\":\"thistle-serve/1\",\"query\":{\"workload\":"
      "{\"network\":\"vgg\"}}}");
  EXPECT_NE(Bad.find("\"status\":\"invalid\""), std::string::npos) << Bad;
  Engine.shutdown();
}

TEST(ServeEngine, ShutdownCommandOnlySetsTheFlag) {
  ServeEngine Engine{ServeOptions{}};
  ASSERT_TRUE(Engine.start().isOk());
  EXPECT_FALSE(Engine.shutdownRequested());
  std::string Ack = Engine.handleLine("{\"cmd\":\"shutdown\"}");
  EXPECT_NE(Ack.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_TRUE(Engine.shutdownRequested());
  // The engine still answers until the daemon actually drains it.
  EXPECT_NE(Engine.handleLine("{\"cmd\":\"ping\"}").find("\"ok\""),
            std::string::npos);
  Engine.shutdown();
}

} // namespace
