//===- tests/TelemetryTest.cpp - Observability layer tests ----------------===//
//
// Covers the determinism contract of docs/OBSERVABILITY.md: counters and
// statistics aggregate commutatively, the per-thread span buffers merge
// into a thread-count-invariant sequence, collection never perturbs the
// optimization result, and the RunReport JSON emitter produces the
// documented schema. The suite degrades gracefully under
// THISTLE_TELEMETRY=OFF: collection tests skip, emitter and SweepReport
// tests still run.
//
//===----------------------------------------------------------------------===//

#include "ir/Builders.h"
#include "nestmodel/Mapper.h"
#include "support/RunReport.h"
#include "support/SweepReport.h"
#include "support/Telemetry.h"
#include "thistle/Optimizer.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <sstream>
#include <tuple>
#include <vector>

using namespace thistle;

namespace {

/// Restores Level::Off and clears collected state around each test so
/// suites never leak telemetry into one another.
struct TelemetryGuard {
  TelemetryGuard() {
    telemetry::reset();
  }
  ~TelemetryGuard() {
    telemetry::setLevel(telemetry::Level::Off);
    telemetry::reset();
  }
};

ConvLayer smallConv() {
  ConvLayer L;
  L.Name = "telemetry-conv";
  L.K = 16;
  L.C = 16;
  L.Hin = 14;
  L.Win = 14;
  L.R = 3;
  L.S = 3;
  return L;
}

ThistleOptions fastOptions(unsigned Threads) {
  ThistleOptions O;
  O.Solver.Tolerance = 1e-5;
  O.MaxPermClassPairs = 8;
  O.Threads = Threads;
  return O;
}

/// The deterministic projection of a span: everything except timing.
using SpanKey =
    std::tuple<std::string, std::uint64_t, std::size_t, unsigned,
               std::string>;

std::vector<SpanKey> spanKeys(const telemetry::Snapshot &Snap) {
  std::vector<SpanKey> Keys;
  for (const telemetry::Span &S : Snap.Spans)
    Keys.push_back({S.Name, S.Epoch, S.Index, S.Depth, S.Detail});
  return Keys;
}

} // namespace

TEST(Telemetry, CountersAndStatsAggregate) {
  if (!telemetry::compiledIn())
    GTEST_SKIP() << "telemetry compiled out";
  TelemetryGuard Guard;
  telemetry::setLevel(telemetry::Level::Metrics);

  telemetry::count("test.alpha");
  telemetry::count("test.alpha", 4);
  telemetry::count("test.beta", 2);
  telemetry::observe("test.value", 3.0);
  telemetry::observe("test.value", -1.0);
  telemetry::observe("test.value", 10.0);

  telemetry::Snapshot Snap = telemetry::snapshot();
  ASSERT_EQ(Snap.Counters.size(), 2u);
  // Counters come back sorted by name.
  EXPECT_EQ(Snap.Counters[0].Name, "test.alpha");
  EXPECT_EQ(Snap.Counters[0].Value, 5u);
  EXPECT_EQ(Snap.Counters[1].Name, "test.beta");
  EXPECT_EQ(Snap.Counters[1].Value, 2u);

  ASSERT_EQ(Snap.Stats.size(), 1u);
  EXPECT_EQ(Snap.Stats[0].Name, "test.value");
  EXPECT_EQ(Snap.Stats[0].Count, 3u);
  EXPECT_DOUBLE_EQ(Snap.Stats[0].Sum, 12.0);
  EXPECT_DOUBLE_EQ(Snap.Stats[0].Min, -1.0);
  EXPECT_DOUBLE_EQ(Snap.Stats[0].Max, 10.0);
  EXPECT_DOUBLE_EQ(Snap.Stats[0].mean(), 4.0);

  // Metrics level records no spans.
  EXPECT_TRUE(Snap.Spans.empty());

  telemetry::reset();
  telemetry::Snapshot Clean = telemetry::snapshot();
  EXPECT_TRUE(Clean.Counters.empty());
  EXPECT_TRUE(Clean.Stats.empty());
}

TEST(Telemetry, OffLevelCollectsNothing) {
  TelemetryGuard Guard;
  telemetry::setLevel(telemetry::Level::Off);
  telemetry::count("test.ignored");
  telemetry::observe("test.ignored", 1.0);
  {
    telemetry::TraceScope Span("test.ignored");
    Span.setDetail("ignored");
  }
  telemetry::Snapshot Snap = telemetry::snapshot();
  EXPECT_TRUE(Snap.Counters.empty());
  EXPECT_TRUE(Snap.Stats.empty());
  EXPECT_TRUE(Snap.Spans.empty());
  EXPECT_EQ(Snap.DroppedSpans, 0u);
}

TEST(Telemetry, SpanNestingInheritsTaskKey) {
  if (!telemetry::compiledIn())
    GTEST_SKIP() << "telemetry compiled out";
  TelemetryGuard Guard;
  telemetry::setLevel(telemetry::Level::Trace);

  telemetry::beginEpoch();
  {
    telemetry::TraceScope Outer("test.sweep"); // NoIndex wrapper.
    {
      telemetry::TraceScope Task("test.task", 7);
      {
        // A keyless child inherits the task key of its parent and
        // nests one level below it.
        telemetry::TraceScope Attempt("test.attempt");
        Attempt.setDetail("converged");
      }
    }
  }

  telemetry::Snapshot Snap = telemetry::snapshot();
  ASSERT_EQ(Snap.Spans.size(), 3u);
  // The merge sorts keyed spans before the NoIndex wrapper.
  EXPECT_EQ(Snap.Spans[0].Name, "test.task");
  EXPECT_EQ(Snap.Spans[0].Index, 7u);
  EXPECT_EQ(Snap.Spans[0].Depth, 0u); // The wrapper has a different key.
  EXPECT_EQ(Snap.Spans[1].Name, "test.attempt");
  EXPECT_EQ(Snap.Spans[1].Index, 7u); // Inherited.
  EXPECT_EQ(Snap.Spans[1].Depth, 1u);
  EXPECT_EQ(Snap.Spans[1].Detail, "converged");
  EXPECT_EQ(Snap.Spans[2].Name, "test.sweep");
  EXPECT_EQ(Snap.Spans[2].Index, telemetry::NoIndex);
}

TEST(Telemetry, SpanDepthIgnoresForeignKeys) {
  if (!telemetry::compiledIn())
    GTEST_SKIP() << "telemetry compiled out";
  TelemetryGuard Guard;
  telemetry::setLevel(telemetry::Level::Trace);

  // A task span under a NoIndex wrapper must report depth 0 whether the
  // shard ran inline on the calling thread (1 worker) or on a pool
  // worker with an empty stack: foreign keys are transparent.
  {
    telemetry::TraceScope Wrapper("test.wrapper");
    telemetry::TraceScope Task("test.task", 3);
  }
  telemetry::Snapshot Snap = telemetry::snapshot();
  ASSERT_EQ(Snap.Spans.size(), 2u);
  EXPECT_EQ(Snap.Spans[0].Name, "test.task");
  EXPECT_EQ(Snap.Spans[0].Depth, 0u);
}

TEST(Telemetry, SweepMergeDeterministicAcrossThreadCounts) {
  if (!telemetry::compiledIn())
    GTEST_SKIP() << "telemetry compiled out";
  TelemetryGuard Guard;

  Problem P = makeConvProblem(smallConv());
  std::vector<SpanKey> Reference;
  std::vector<telemetry::CounterValue> RefCounters;
  for (unsigned Threads : {1u, 4u, 8u}) {
    telemetry::reset();
    telemetry::setLevel(telemetry::Level::Trace);
    ThistleResult R = optimizeLayer(P, eyerissArch(),
                                    TechParams::cgo45nm(),
                                    fastOptions(Threads));
    ASSERT_TRUE(R.Found);
    telemetry::Snapshot Snap = telemetry::snapshot();
    EXPECT_FALSE(Snap.Spans.empty());
    if (Threads == 1) {
      Reference = spanKeys(Snap);
      RefCounters = Snap.Counters;
      continue;
    }
    // The merged (name, epoch, index, depth, detail) sequence and every
    // counter must be identical at any worker count.
    EXPECT_EQ(spanKeys(Snap), Reference) << "at " << Threads << " threads";
    ASSERT_EQ(Snap.Counters.size(), RefCounters.size());
    for (std::size_t I = 0; I < RefCounters.size(); ++I) {
      EXPECT_EQ(Snap.Counters[I].Name, RefCounters[I].Name);
      EXPECT_EQ(Snap.Counters[I].Value, RefCounters[I].Value)
          << Snap.Counters[I].Name << " at " << Threads << " threads";
    }
  }
}

TEST(Telemetry, CollectionNeverPerturbsResults) {
  if (!telemetry::compiledIn())
    GTEST_SKIP() << "telemetry compiled out";
  TelemetryGuard Guard;

  Problem P = makeConvProblem(smallConv());
  telemetry::setLevel(telemetry::Level::Off);
  ThistleResult Base =
      optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(),
                    fastOptions(2));
  ASSERT_TRUE(Base.Found);

  telemetry::setLevel(telemetry::Level::Trace);
  ThistleResult Traced =
      optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(),
                    fastOptions(2));
  ASSERT_TRUE(Traced.Found);

  // Bit-identical: collection draws no randomness and reorders no FP.
  EXPECT_EQ(Base.Eval.EnergyPj, Traced.Eval.EnergyPj);
  EXPECT_EQ(Base.Eval.Cycles, Traced.Eval.Cycles);
  EXPECT_EQ(Base.ModelObjective, Traced.ModelObjective);
  EXPECT_EQ(Base.Stats.NewtonIterations, Traced.Stats.NewtonIterations);
  EXPECT_EQ(Base.Map.toString(P), Traced.Map.toString(P));
}

TEST(Telemetry, MapperSearchStopCauses) {
  TelemetryGuard Guard;
  Problem P = makeConvProblem(smallConv());
  ArchConfig Arch = eyerissArch();
  EnergyModel E(TechParams::cgo45nm());

  MapperOptions Victory;
  Victory.Seed = 7;
  Victory.MaxTrials = 4000;
  Victory.VictoryCondition = 64;
  Victory.TrialsPerRound = 32;
  MapperResult RV = searchMappings(P, Arch, E, Victory);
  ASSERT_TRUE(RV.Found);
  EXPECT_EQ(RV.StopCause, MapperStopCause::Victory);

  MapperOptions Budget = Victory;
  Budget.MaxTrials = 64;
  Budget.VictoryCondition = 100000;
  MapperResult RB = searchMappings(P, Arch, E, Budget);
  EXPECT_EQ(RB.StopCause, MapperStopCause::MaxTrials);
  EXPECT_LE(RB.Trials, 64u);

  MapperOptions Expired = Victory;
  Expired.DeadlineAt = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(1);
  MapperResult RD = searchMappings(P, Arch, E, Expired);
  EXPECT_TRUE(RD.DeadlineExpired);
  EXPECT_EQ(RD.StopCause, MapperStopCause::Deadline);
  EXPECT_EQ(RD.Trials, 0u);

  EXPECT_STREQ(mapperStopCauseName(MapperStopCause::Victory), "victory");
  EXPECT_STREQ(mapperStopCauseName(MapperStopCause::MaxTrials),
               "max-trials");
  EXPECT_STREQ(mapperStopCauseName(MapperStopCause::Deadline), "deadline");
  EXPECT_STREQ(mapperStopCauseName(MapperStopCause::None), "none");
}

TEST(Telemetry, MapperStopCauseIsThreadCountInvariant) {
  TelemetryGuard Guard;
  Problem P = makeConvProblem(smallConv());
  ArchConfig Arch = eyerissArch();
  EnergyModel E(TechParams::cgo45nm());
  MapperOptions O;
  O.Seed = 11;
  O.MaxTrials = 2000;
  O.VictoryCondition = 128;
  O.TrialsPerRound = 32;

  O.Threads = 1;
  MapperResult R1 = searchMappings(P, Arch, E, O);
  O.Threads = 8;
  MapperResult R8 = searchMappings(P, Arch, E, O);
  EXPECT_EQ(R1.StopCause, R8.StopCause);
  EXPECT_EQ(R1.Trials, R8.Trials);
  EXPECT_EQ(R1.LegalTrials, R8.LegalTrials);
}

TEST(SweepReportZeroTasks, ToStringSaysNothingAttempted) {
  SweepReport Empty;
  EXPECT_EQ(Empty.toString("pair"), "0 pairs: nothing attempted");

  SweepReport Expired;
  Expired.DeadlineExpired = true;
  EXPECT_EQ(Expired.toString("combo"),
            "0 combos: nothing attempted [deadline expired]");
}

TEST(RunReport, JsonMatchesDocumentedSchema) {
  RunReport RR;
  RR.Workload = "telemetry-conv";
  RR.Mode = "dataflow";
  RR.Objective = "energy";
  RR.Hierarchy = "classic3";
  RR.Threads = 4;
  RR.WallSeconds = 0.25;
  RR.ExitCode = 1;
  RR.Found = true;
  RR.EnergyPj = 123.5;
  RR.EnergyPerMacPj = 21.0;
  RR.Cycles = 4096.0;
  RR.MacIpc = 99.0;
  RR.EdpPjCycles = 505856.0;
  RR.HasSweep = true;
  RR.SweepTaskNoun = "pair";
  RR.Sweep.record(TaskOutcome::Solved, 0, 0, 0, 1, "");
  RR.Sweep.record(TaskOutcome::Failed, 1, 0, 1, 3,
                  "solver \"blew\" up\n");
  telemetry::Span Span;
  Span.Name = "thistle.pair";
  Span.Index = 1;
  Span.Depth = 0;
  Span.DurationNs = 1000;
  RR.Telemetry.Spans.push_back(Span);
  RR.Telemetry.Counters.push_back({"solver.solves", 12});
  RR.Telemetry.Stats.push_back({"solver.newton_per_solve", 2, 10.0,
                                4.0, 6.0});

  std::string Json = RR.toJson();
  EXPECT_NE(Json.find("\"schema\": \"thistle-run-report/1\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"workload\": \"telemetry-conv\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"exit_code\": 1"), std::string::npos);
  EXPECT_NE(Json.find("\"task_noun\": \"pair\""), std::string::npos);
  EXPECT_NE(Json.find("\"solved\": 1"), std::string::npos);
  EXPECT_NE(Json.find("\"failed\": 1"), std::string::npos);
  EXPECT_NE(Json.find("\"solver.solves\": 12"), std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"thistle.pair\""), std::string::npos);
  // Control characters and quotes in incident details are escaped.
  EXPECT_NE(Json.find("solver \\\"blew\\\" up\\n"), std::string::npos);
  EXPECT_EQ(Json.find("\nsolver"), std::string::npos);
  // The report ends with exactly one newline.
  ASSERT_FALSE(Json.empty());
  EXPECT_EQ(Json.back(), '\n');
  EXPECT_NE(Json[Json.size() - 2], '\n');
}

TEST(RunReport, JsonWithoutSweepEmitsFalse) {
  RunReport RR;
  RR.Workload = "w";
  std::string Json = RR.toJson();
  EXPECT_NE(Json.find("\"sweep\": false"), std::string::npos);
  EXPECT_NE(Json.find("\"dropped_spans\": 0"), std::string::npos);
}

TEST(RunReport, ProfilePrintsTablesOrEmptyNote) {
  telemetry::Snapshot Empty;
  std::ostringstream NoneOut;
  printProfile(NoneOut, Empty);
  EXPECT_NE(NoneOut.str().find("no telemetry collected"),
            std::string::npos);

  telemetry::Snapshot Snap;
  telemetry::Span Span;
  Span.Name = "thistle.pair";
  Span.DurationNs = 2'000'000;
  Snap.Spans.push_back(Span);
  Snap.Spans.push_back(Span);
  Snap.Counters.push_back({"solver.solves", 3});
  Snap.Stats.push_back({"mapper.acceptance_rate", 1, 0.5, 0.5, 0.5});
  std::ostringstream Out;
  printProfile(Out, Snap);
  EXPECT_NE(Out.str().find("thistle.pair"), std::string::npos);
  EXPECT_NE(Out.str().find("solver.solves"), std::string::npos);
  EXPECT_NE(Out.str().find("mapper.acceptance_rate"), std::string::npos);
}
