file(REMOVE_RECURSE
  "CMakeFiles/thistle_export.dir/TimeloopExport.cpp.o"
  "CMakeFiles/thistle_export.dir/TimeloopExport.cpp.o.d"
  "libthistle_export.a"
  "libthistle_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thistle_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
