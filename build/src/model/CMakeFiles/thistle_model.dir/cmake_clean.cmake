file(REMOVE_RECURSE
  "CMakeFiles/thistle_model.dir/TechModel.cpp.o"
  "CMakeFiles/thistle_model.dir/TechModel.cpp.o.d"
  "libthistle_model.a"
  "libthistle_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thistle_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
