//===- bench/bench_ablation_solver.cpp - GP solver performance ------------===//
//
// Measures the interior-point GP solver that replaces CVXPY: per-layer
// solve statistics (variables, constraints, Newton iterations, wall time)
// for one representative permutation class, and google-benchmark timings
// across solver tolerances.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/TablePrinter.h"
#include "thistle/PermutationSpace.h"

#include <chrono>
#include <cmath>
#include <iostream>

using namespace thistle;
using namespace thistle::bench;

namespace {

GpBuildSpec specForLayer(const Problem &P, DesignMode Mode) {
  GpBuildSpec Spec;
  Spec.Mode = Mode;
  std::vector<unsigned> Tiled;
  for (unsigned I = 0; I < P.numIterators(); ++I) {
    const Iterator &It = P.iterators()[I];
    if (It.Extent > 1 && It.Name != "r" && It.Name != "s")
      Tiled.push_back(I);
  }
  Spec.TiledIters = Tiled;
  std::vector<PermClass> Classes = enumeratePermClasses(P, Tiled);
  Spec.PePerm = Classes.front().Representative;
  Spec.DramPerm = Classes.back().Representative;
  Spec.Arch = eyerissArch();
  Spec.AreaBudgetUm2 = eyerissAreaUm2(Spec.Tech);
  return Spec;
}

void printSolverTable() {
  TablePrinter Table({"layer", "mode", "vars", "ineqs", "eqs",
                      "newton iters", "solve ms", "feasible"});
  for (const ConvLayer &L : allPaperLayers()) {
    Problem P = makeConvProblem(L);
    for (DesignMode Mode :
         {DesignMode::DataflowOnly, DesignMode::CoDesign}) {
      GpBuildSpec Spec = specForLayer(P, Mode);
      GpBuild Build = buildGp(P, Spec);
      auto Start = std::chrono::steady_clock::now();
      GpSolution S = solveGp(Build.Gp);
      double Ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
      Table.addRow({L.Name,
                    Mode == DesignMode::DataflowOnly ? "dataflow" : "co",
                    std::to_string(Build.Gp.variables().size()),
                    std::to_string(Build.Gp.constraints().size()),
                    std::to_string(Build.Gp.equalities().size()),
                    std::to_string(S.NewtonIterations),
                    TablePrinter::formatDouble(Ms, 2),
                    S.Feasible ? "yes" : "no"});
    }
  }
  Table.print(std::cout);
  std::printf("\n");
}

void timeGpSolveTolerance(benchmark::State &State) {
  Problem P = makeConvProblem(resnet18Layers()[1]);
  GpBuildSpec Spec = specForLayer(P, DesignMode::CoDesign);
  GpBuild Build = buildGp(P, Spec);
  GpSolverOptions O;
  O.Tolerance = std::pow(10.0, -static_cast<double>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(solveGp(Build.Gp, O));
}
BENCHMARK(timeGpSolveTolerance)->Arg(4)->Arg(6)->Arg(8)->Unit(
    benchmark::kMillisecond);

void timeGpBuild(benchmark::State &State) {
  Problem P = makeConvProblem(resnet18Layers()[1]);
  GpBuildSpec Spec = specForLayer(P, DesignMode::CoDesign);
  for (auto _ : State)
    benchmark::DoNotOptimize(buildGp(P, Spec));
}
BENCHMARK(timeGpBuild)->Unit(benchmark::kMillisecond);

} // namespace

int main(int Argc, char **Argv) {
  printHeader("Ablation: GP solver",
              "Interior-point solver statistics per layer (the CVXPY "
              "replacement)");
  printSolverTable();
  return runTimings(Argc, Argv);
}
