//===- sim/TileWalk.h - Shared tile-walking machinery -----------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Building blocks shared by the brute-force data-movement oracles (the
/// fixed 4-level simulator in sim/ and the arbitrary-depth simulator in
/// multilevel/): dense coordinate boxes, the streaming buffer tracker
/// with contiguous-advance reuse semantics, and a generic odometer.
/// These live in thistle::simdetail — they are implementation details of
/// the oracles, not public API.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_SIM_TILEWALK_H
#define THISTLE_SIM_TILEWALK_H

#include "ir/Problem.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace thistle::simdetail {

/// A dense per-dimension coordinate box (inclusive ranges) in a tensor's
/// data space.
struct Box {
  std::vector<std::pair<std::int64_t, std::int64_t>> Ranges;

  bool operator==(const Box &Other) const = default;
};

inline std::int64_t boxWords(const Box &B) {
  std::int64_t Words = 1;
  for (const auto &[Lo, Hi] : B.Ranges)
    Words *= (Hi - Lo + 1);
  return Words;
}

inline std::int64_t intersectionWords(const Box &A, const Box &B) {
  assert(A.Ranges.size() == B.Ranges.size() && "box rank mismatch");
  std::int64_t Words = 1;
  for (std::size_t D = 0; D < A.Ranges.size(); ++D) {
    std::int64_t Lo = std::max(A.Ranges[D].first, B.Ranges[D].first);
    std::int64_t Hi = std::min(A.Ranges[D].second, B.Ranges[D].second);
    if (Lo > Hi)
      return 0;
    Words *= (Hi - Lo + 1);
  }
  return Words;
}

/// The dense box spanned by \p T when iterator i ranges over
/// [Origins[i], Origins[i] + Extents[i]).
///
/// "Dense" is the model's counting convention, not an approximation bug
/// (DESIGN.md, docs/WORKLOADS.md): each dimension's range is the *bounding
/// interval* of its affine projection. For a multi-term projection
/// x*h + d*r with x > 1 or d > 1 (strided or dilated layers), interior
/// positions no (h, r) combination actually touches — the "halo holes" —
/// are still counted as resident and transferred. The analytical nest and
/// maestro backends count the same dense boxes (MultiNestAnalysis's
/// footprint/union words and MaestroModel's delivered-words recurrence),
/// which is exactly why all three agree to the integer on dilated,
/// transposed and grouped layers; an exact point-count here would break
/// that equality for every strided layer already in Table II.
inline Box tileBox(const Tensor &T, const std::vector<std::int64_t> &Origins,
                   const std::vector<std::int64_t> &Extents) {
  Box B;
  B.Ranges.reserve(T.Dims.size());
  for (const DimRef &D : T.Dims) {
    std::int64_t Lo = 0, Hi = 0;
    for (const DimRef::Term &Term : D.Terms) {
      assert(Term.Stride > 0 && "projection strides must be positive");
      assert(Extents[Term.Iter] >= 1 && "tile extents must be positive");
      Lo += Term.Stride * Origins[Term.Iter];
      Hi += Term.Stride * (Origins[Term.Iter] + Extents[Term.Iter] - 1);
    }
    B.Ranges.push_back({Lo, Hi});
  }
  return B;
}

/// Tracks one tensor's buffer at one level.
///
/// A streaming buffer retains its previous tile only across a
/// *contiguous* advance — the step incremented one loop by +1 (loops
/// below it wrapping to zero) and no loop affecting this tensor's tile
/// wrapped. On a contiguous advance the newly needed words are
/// |new| - |new /\ prev| (halo/identity reuse: this yields both copy
/// hoisting and the streaming-union "replace" of Algorithm 1); any other
/// step flushes and reloads the full tile. Read-write tensors write
/// evicted words back and flush at the end.
class BufferTracker {
public:
  explicit BufferTracker(bool ReadWrite) : ReadWrite(ReadWrite) {}

  void step(const Box &NewTile, bool ContinuousAdvance) {
    if (!Prev) {
      Loads += boxWords(NewTile);
      Prev = NewTile;
      return;
    }
    std::int64_t Shared =
        ContinuousAdvance ? intersectionWords(*Prev, NewTile) : 0;
    Loads += boxWords(NewTile) - Shared;
    if (ReadWrite)
      Stores += boxWords(*Prev) - Shared;
    Prev = NewTile;
  }

  /// Flushes the final tile (read-write tensors write it back).
  void finish() {
    if (ReadWrite && Prev)
      Stores += boxWords(*Prev);
    Prev.reset();
  }

  std::int64_t loads() const { return Loads; }
  std::int64_t stores() const { return Stores; }

private:
  bool ReadWrite;
  std::optional<Box> Prev;
  std::int64_t Loads = 0;
  std::int64_t Stores = 0;
};

/// Odometer over the trip counts \p Trips (outer-to-inner as given).
/// Invokes Body(Idx, AdvancedPos) for every step; AdvancedPos is the
/// position that incremented by +1 (every position after it wrapped to
/// zero), or Trips.size() for the very first step.
template <typename Fn>
void forEachStep(const std::vector<std::int64_t> &Trips, Fn Body) {
  std::vector<std::int64_t> Idx(Trips.size(), 0);
  std::size_t AdvancedPos = Trips.size();
  while (true) {
    Body(Idx, AdvancedPos);
    std::size_t Pos = Trips.size();
    bool Advanced = false;
    while (Pos > 0) {
      --Pos;
      if (++Idx[Pos] < Trips[Pos]) {
        AdvancedPos = Pos;
        Advanced = true;
        break;
      }
      Idx[Pos] = 0;
    }
    if (!Advanced)
      return;
  }
}

/// True if the step (advance at \p AdvancedPos) is a contiguous advance
/// for tensor \p T: no loop *below* the advanced one that affects T's
/// tile (present iterator with trip > 1) wrapped around.
inline bool isContinuousAdvance(const Tensor &T,
                                const std::vector<unsigned> &Perm,
                                const std::vector<std::int64_t> &Trips,
                                std::size_t AdvancedPos) {
  for (std::size_t Pos = AdvancedPos + 1; Pos < Perm.size(); ++Pos)
    if (Trips[Pos] > 1 && T.usesIter(Perm[Pos]))
      return false;
  return true;
}

} // namespace thistle::simdetail

#endif // THISTLE_SIM_TILEWALK_H
