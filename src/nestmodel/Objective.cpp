//===- nestmodel/Objective.cpp - Search objectives ------------------------===//

#include "nestmodel/Objective.h"

#include "multilevel/MultiNestAnalysis.h"
#include "nestmodel/Evaluator.h"

#include <cassert>

using namespace thistle;

double thistle::objectiveValue(const EvalResult &Eval,
                               SearchObjective Objective) {
  switch (Objective) {
  case SearchObjective::Energy:
    return Eval.EnergyPj;
  case SearchObjective::Delay:
    return Eval.Cycles;
  case SearchObjective::EnergyDelayProduct:
    return Eval.EdpPjCycles;
  }
  assert(false && "unknown search objective");
  return 0.0;
}

double thistle::objectiveValue(const MultiEvalResult &Eval,
                               SearchObjective Objective) {
  switch (Objective) {
  case SearchObjective::Energy:
    return Eval.EnergyPj;
  case SearchObjective::Delay:
    return Eval.Cycles;
  case SearchObjective::EnergyDelayProduct:
    return Eval.EdpPjCycles;
  }
  assert(false && "unknown search objective");
  return 0.0;
}
