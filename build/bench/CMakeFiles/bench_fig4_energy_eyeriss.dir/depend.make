# Empty dependencies file for bench_fig4_energy_eyeriss.
# This may be replaced when dependencies are built.
