//===- nestmodel/Mapper.h - Search-based mapping baseline -------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The search-based baseline that plays the role of the Timeloop Mapper in
/// the paper's evaluation (Figs. 4 and 7): it explores the space of
/// mappings for a *fixed* architecture with randomized sampling plus
/// hill-climbing mutations, and terminates either after a maximum number
/// of trials (timeout) or after a number of consecutive non-improving
/// trials (the Mapper's "victory condition", paper section IV).
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_NESTMODEL_MAPPER_H
#define THISTLE_NESTMODEL_MAPPER_H

#include "multilevel/MultiNestAnalysis.h"
#include "nestmodel/CostEvaluator.h"
#include "nestmodel/Evaluator.h"
#include "nestmodel/Objective.h"
#include "support/Status.h"

#include <chrono>
#include <cstdint>

namespace thistle {

/// Search strategy, mirroring Timeloop's "various search strategies".
enum class MapperStrategy {
  /// Independent random samples only.
  RandomSampling,
  /// Random samples interleaved with greedy mutations of the incumbent
  /// (the default; a strong baseline).
  HillClimb,
  /// Simulated annealing over mutations with geometric cooling.
  Anneal,
};

/// Mapper search configuration.
struct MapperOptions {
  std::uint64_t Seed = 1;
  /// Maximum number of candidate mappings to evaluate (timeout).
  unsigned MaxTrials = 20000;
  /// Terminate after this many consecutive trials without improvement
  /// over the incumbent (victory condition).
  unsigned VictoryCondition = 4000;
  SearchObjective Objective = SearchObjective::Energy;
  MapperStrategy Strategy = MapperStrategy::HillClimb;
  /// Anneal only: initial acceptance temperature as a fraction of the
  /// first legal objective value, and per-trial cooling factor.
  double AnnealInitialTemp = 0.5;
  double AnnealCooling = 0.999;
  /// Worker threads for candidate evaluation (0 = one per hardware
  /// thread). The search runs in rounds of TrialsPerRound independently
  /// seeded trials whose bookkeeping is applied in slot order at the round
  /// boundary, so the result is bit-identical at every thread count.
  unsigned Threads = 0;
  /// Trials per round. Unlike Threads this is part of the search
  /// definition: RNG streams are seeded per (round, slot), so changing it
  /// changes the trajectory.
  unsigned TrialsPerRound = 64;
  /// Wall-clock budget (0 = unlimited), checked at round boundaries:
  /// once it expires no further round is issued and the incumbent best
  /// is returned with DeadlineExpired set. A search that never hits the
  /// deadline is bit-identical to an unbounded one (the RNG streams are
  /// per-(round, slot), untouched by the deadline check).
  std::chrono::milliseconds Deadline{0};
  /// Absolute deadline (steady clock); overrides Deadline when set.
  std::chrono::steady_clock::time_point DeadlineAt{};
  /// Cost-model backend for candidate scoring; null selects the nest
  /// model (bit-identical to the pre-interface behavior). Must be
  /// thread-safe: slots evaluate concurrently.
  const CostEvaluator *Evaluator = nullptr;
};

/// Why a mapper search returned when it did.
enum class MapperStopCause {
  /// No trial ran (input validation failed).
  None,
  /// The victory condition fired: VictoryCondition consecutive trials
  /// without improvement over the incumbent.
  Victory,
  /// The MaxTrials budget was exhausted (the Mapper's "timeout").
  MaxTrials,
  /// The wall-clock deadline expired at a round boundary.
  Deadline,
};

/// Printable name of a stop cause ("victory", "max-trials", ...).
const char *mapperStopCauseName(MapperStopCause Cause);

/// Search outcome.
struct MapperResult {
  bool Found = false;   ///< True if any legal mapping was evaluated.
  /// Non-Ok when the inputs failed validation; no trial ran.
  Status InputStatus;
  /// True when the search stopped at the wall-clock deadline rather
  /// than at MaxTrials or the victory condition.
  bool DeadlineExpired = false;
  Mapping Best;         ///< Best legal mapping found.
  EvalResult BestEval;  ///< Its metrics.
  unsigned Trials = 0;  ///< Candidates evaluated.
  unsigned LegalTrials = 0;
  /// What ended the search (victory, trial budget, or deadline).
  MapperStopCause StopCause = MapperStopCause::None;
};

/// Search outcome over an L-level hierarchy.
struct MultiMapperResult {
  bool Found = false;        ///< True if any legal mapping was evaluated.
  /// Non-Ok when the hierarchy failed validation; no trial ran.
  Status InputStatus;
  /// True when the search stopped at the wall-clock deadline.
  bool DeadlineExpired = false;
  MultiMapping Best;         ///< Best legal mapping found.
  MultiEvalResult BestEval;  ///< Its metrics.
  unsigned Trials = 0;       ///< Candidates evaluated.
  unsigned LegalTrials = 0;
  /// What ended the search (victory, trial budget, or deadline).
  MapperStopCause StopCause = MapperStopCause::None;
};

/// Runs the stochastic mapping search for \p Prob on the fixed hierarchy
/// \p H — the hierarchy-generic engine. On a classic 3-level machine the
/// RNG streams, trial trajectory and winner are bit-identical to
/// searchMappings (which wraps this), at every thread count.
MultiMapperResult searchMultiMappings(const Problem &Prob, const Hierarchy &H,
                                      const MapperOptions &Options);

/// Runs the baseline mapping search for \p Prob on the fixed \p Arch.
/// Thin wrapper: lifts \p Arch to Hierarchy::classic3Level and runs
/// searchMultiMappings.
MapperResult searchMappings(const Problem &Prob, const ArchConfig &Arch,
                            const EnergyModel &Energy,
                            const MapperOptions &Options);

} // namespace thistle

#endif // THISTLE_NESTMODEL_MAPPER_H
