//===- expr/FactoredExpr.cpp - Product-of-sums expressions ----------------===//

#include "expr/FactoredExpr.h"

#include <cassert>
#include <sstream>

using namespace thistle;

void FactoredExpr::pushFactor(const Signomial &Factor) {
  assert(!Factor.isZero() && "zero factor would zero the whole expression");
  if (Factor.monomials().size() == 1) {
    Prefix = Prefix * Factor.monomials().front();
    return;
  }
  Factors.push_back(Factor);
}

void FactoredExpr::multiplyPrefix(const Monomial &M) { Prefix = Prefix * M; }

FactoredExpr FactoredExpr::substituted(VarId Var, const Monomial &Repl) const {
  FactoredExpr Out;
  Out.Prefix = Prefix.substituted(Var, Repl);
  for (const Signomial &F : Factors)
    Out.Factors.push_back(F.substituted(Var, Repl));
  return Out;
}

Signomial FactoredExpr::expanded() const {
  Signomial Out{Prefix};
  for (const Signomial &F : Factors)
    Out = Out * F;
  return Out;
}

FactoredExpr FactoredExpr::posynomialUpperBound() const {
  FactoredExpr Out;
  Out.Prefix = Prefix;
  for (const Signomial &F : Factors) {
    Signomial Bounded = F.posynomialUpperBound();
    assert(!Bounded.isZero() && "factor had no positive terms");
    Out.pushFactor(Bounded);
  }
  return Out;
}

FactoredExpr FactoredExpr::monomialProductUpperBound() const {
  FactoredExpr Out;
  Out.multiplyPrefix(Prefix);
  for (const Signomial &F : Factors) {
    Monomial Product(1.0);
    [[maybe_unused]] bool AnyPositive = false;
    for (const Monomial &M : F.monomials()) {
      if (M.coefficient() <= 0.0)
        continue;
      Product = Product * M;
      AnyPositive = true;
    }
    assert(AnyPositive && "factor had no positive terms");
    Out.multiplyPrefix(Product);
  }
  return Out;
}

double FactoredExpr::evaluate(const Assignment &Values) const {
  double V = Prefix.evaluate(Values);
  for (const Signomial &F : Factors)
    V *= F.evaluate(Values);
  return V;
}

bool FactoredExpr::mentions(VarId Var) const {
  if (Prefix.mentions(Var))
    return true;
  for (const Signomial &F : Factors)
    if (F.mentions(Var))
      return true;
  return false;
}

std::string FactoredExpr::toString(const VarTable &Table) const {
  std::ostringstream OS;
  OS << Prefix.toString(Table);
  for (const Signomial &F : Factors)
    OS << " * (" << F.toString(Table) << ")";
  return OS.str();
}
