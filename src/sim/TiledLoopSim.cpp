//===- sim/TiledLoopSim.cpp - Brute-force data-movement oracle ------------===//

#include "sim/TiledLoopSim.h"

#include "sim/TileWalk.h"

#include <cassert>

using namespace thistle;
using namespace thistle::simdetail;

std::int64_t SimResult::totalDramTraffic() const {
  std::int64_t Sum = 0;
  for (const SimTensorTraffic &T : PerTensor)
    Sum += T.DramToSram + T.SramToDram;
  return Sum;
}

std::int64_t SimResult::totalSramRegTraffic() const {
  std::int64_t Sum = 0;
  for (const SimTensorTraffic &T : PerTensor)
    Sum += T.SramToReg + T.RegToSram;
  return Sum;
}

SimResult thistle::simulateTiledNest(const Problem &Prob, const Mapping &Map) {
  assert(Map.validate(Prob).empty() && "mapping must validate");
  const unsigned NumIters = Prob.numIterators();
  const std::vector<std::int64_t> SramExt = Map.sramTileExtents();
  const std::vector<std::int64_t> PeExt = Map.peTileExtents();
  const std::vector<std::int64_t> RegExt = Map.registerTileExtents();

  SimResult Result;
  Result.PerTensor.resize(Prob.tensors().size());

  // Per-level trip counts in permutation (outer-to-inner) order.
  std::vector<std::int64_t> DramTrips, PeTrips;
  for (unsigned P : Map.DramPerm)
    DramTrips.push_back(Map.factor(P, TileLevel::DramTemporal));
  for (unsigned P : Map.PePerm)
    PeTrips.push_back(Map.factor(P, TileLevel::PeTemporal));

  for (std::size_t TI = 0; TI < Prob.tensors().size(); ++TI) {
    const Tensor &T = Prob.tensors()[TI];

    // ---- Level 1: DRAM <-> SRAM. One buffer, walked over the full
    // DRAM-level temporal loop nest.
    {
      BufferTracker Buf(T.ReadWrite);
      forEachStep(DramTrips, [&](const std::vector<std::int64_t> &Idx,
                                 std::size_t AdvancedPos) {
        std::vector<std::int64_t> Origins(NumIters, 0);
        for (std::size_t Pos = 0; Pos < Map.DramPerm.size(); ++Pos)
          Origins[Map.DramPerm[Pos]] = Idx[Pos] * SramExt[Map.DramPerm[Pos]];
        bool Continuous =
            AdvancedPos >= DramTrips.size() ||
            isContinuousAdvance(T, Map.DramPerm, DramTrips, AdvancedPos);
        Buf.step(tileBox(T, Origins, SramExt), Continuous);
      });
      Buf.finish();
      Result.PerTensor[TI].DramToSram = Buf.loads();
      Result.PerTensor[TI].SramToDram = Buf.stores();
    }

    // ---- Level 2: SRAM <-> registers. For every SRAM tile and every
    // distinct spatial coordinate along *present* iterators (absent ones
    // multicast / reduce and count once), walk the per-PE temporal loops
    // with a fresh buffer (per-level model: no reuse across SRAM tiles).
    {
      std::vector<unsigned> PresentSpatial;
      std::vector<std::int64_t> PresentTrips;
      for (unsigned I = 0; I < NumIters; ++I)
        if (T.usesIter(I)) {
          PresentSpatial.push_back(I);
          PresentTrips.push_back(Map.factor(I, TileLevel::Spatial));
        }

      std::int64_t Loads = 0, Stores = 0;
      forEachStep(DramTrips, [&](const std::vector<std::int64_t> &DramIdx,
                                 std::size_t) {
        std::vector<std::int64_t> SramOrigins(NumIters, 0);
        for (std::size_t Pos = 0; Pos < Map.DramPerm.size(); ++Pos)
          SramOrigins[Map.DramPerm[Pos]] =
              DramIdx[Pos] * SramExt[Map.DramPerm[Pos]];

        forEachStep(PresentTrips, [&](const std::vector<std::int64_t> &SpIdx,
                                      std::size_t) {
          std::vector<std::int64_t> PeOrigins = SramOrigins;
          for (std::size_t K = 0; K < PresentSpatial.size(); ++K)
            PeOrigins[PresentSpatial[K]] +=
                SpIdx[K] * PeExt[PresentSpatial[K]];

          BufferTracker Buf(T.ReadWrite);
          forEachStep(PeTrips, [&](const std::vector<std::int64_t> &QIdx,
                                   std::size_t AdvancedPos) {
            std::vector<std::int64_t> Origins = PeOrigins;
            for (std::size_t Pos = 0; Pos < Map.PePerm.size(); ++Pos)
              Origins[Map.PePerm[Pos]] +=
                  QIdx[Pos] * RegExt[Map.PePerm[Pos]];
            bool Continuous =
                AdvancedPos >= PeTrips.size() ||
                isContinuousAdvance(T, Map.PePerm, PeTrips, AdvancedPos);
            Buf.step(tileBox(T, Origins, RegExt), Continuous);
          });
          Buf.finish();
          Loads += Buf.loads();
          Stores += Buf.stores();
        });
      });
      Result.PerTensor[TI].SramToReg = Loads;
      Result.PerTensor[TI].RegToSram = Stores;
    }
  }
  return Result;
}
