//===- model/TechModel.cpp - Technology, energy and area models -----------===//

#include "model/TechModel.h"

#include <cmath>

using namespace thistle;

double ArchConfig::areaUm2(const TechParams &Tech) const {
  return (Tech.AreaRegWordUm2 * static_cast<double>(RegWordsPerPE) +
          Tech.AreaMacUm2) *
             static_cast<double>(NumPEs) +
         Tech.AreaSramWordUm2 * static_cast<double>(SramWords);
}

double EnergyModel::sramAccessPj(double SramWords) const {
  return Tech.SigmaSramPj * std::sqrt(SramWords);
}
