file(REMOVE_RECURSE
  "CMakeFiles/thistle_solver.dir/GpProblem.cpp.o"
  "CMakeFiles/thistle_solver.dir/GpProblem.cpp.o.d"
  "CMakeFiles/thistle_solver.dir/GpSolver.cpp.o"
  "CMakeFiles/thistle_solver.dir/GpSolver.cpp.o.d"
  "libthistle_solver.a"
  "libthistle_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thistle_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
