//===- thistle/GpBuilder.h - Assemble Eq. 3 / Eq. 5 programs ----*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assembles the constrained geometric programs of the paper for one
/// choice of tile-loop permutations:
///
///  - dataflow optimization (Eq. 3): architecture parameters are fixed
///    constants, trip counts are the variables;
///  - architecture-dataflow co-design (Eq. 5): the register capacity R,
///    SRAM capacity S and PE count P become variables, the per-access
///    energies follow Eq. 4 (eps_R = sigma_R*R, eps_S = sigma_S*sqrt(S)),
///    and the linear area model bounds the total silicon area;
///  - either objective: energy (the Eq. 3 sum) or delay, where the
///    max-of-components delay is expressed with the standard epigraph
///    trick (minimize T subject to component/T <= 1).
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_THISTLE_GPBUILDER_H
#define THISTLE_THISTLE_GPBUILDER_H

#include "ir/Problem.h"
#include "model/TechModel.h"
#include "support/Status.h"
#include "nestmodel/Objective.h"
#include "solver/GpProblem.h"
#include "solver/GpSolver.h"
#include "thistle/ExprGen.h"

#include <array>
#include <vector>

namespace thistle {

/// Whether architecture parameters are variables.
enum class DesignMode {
  DataflowOnly, ///< Eq. 3: fixed architecture.
  CoDesign,     ///< Eq. 5: R, S, P variables under an area budget.
};

/// How signomial halo factors (e.g. r_h + r_r - 1) are over-approximated
/// to stay within DGP.
enum class HaloBound {
  /// Drop the negative constant: r_h + r_r. Tight for large tiles, up to
  /// ~2x loose near the all-ones corner (can make tiny register files
  /// look infeasible).
  DropNegative,
  /// Product of the positive monomials: r_h * r_r. Exact whenever one
  /// side is 1 (the small-tile regime), loose for large tiles. Used as a
  /// fallback when DropNegative is infeasible.
  ProductOfTerms,
};

/// Everything needed to generate one GP.
struct GpBuildSpec {
  DesignMode Mode = DesignMode::DataflowOnly;
  SearchObjective Objective = SearchObjective::Energy;
  /// Outer-to-inner per-PE temporal permutation (tiled iterators only).
  std::vector<unsigned> PePerm;
  /// Outer-to-inner DRAM-level temporal permutation (tiled iterators only).
  std::vector<unsigned> DramPerm;
  /// Iterators allowed to be tiled temporally; all others (stencil dims
  /// r/s, extent-1 dims) keep trip count 1 at both temporal tile levels.
  std::vector<unsigned> TiledIters;
  /// When true, untiled iterators may still be *spatially* partitioned
  /// (r_it * p_it = N_it): Eyeriss-style row-stationary mapping of the
  /// kernel rows across the PE array. The paper's pruning only forbids
  /// temporal tiling of the stencil dims ("it is infeasible to divide
  /// them into a number of equal tiles"); spatial unrolling keeps whole
  /// rows per PE and is essential for the delay objective.
  bool SpatialUntiled = true;
  /// Over-approximation used for halo factors in the DGP.
  HaloBound Halo = HaloBound::DropNegative;
  /// Fixed architecture (DataflowOnly) / bandwidth source (CoDesign).
  ArchConfig Arch;
  TechParams Tech = TechParams::cgo45nm();
  /// Area budget for co-design (Eq. 5 right-hand side), in um^2.
  double AreaBudgetUm2 = 0.0;
};

/// The generated GP plus the variable handles needed for extraction.
struct GpBuild {
  GpProblem Gp;
  /// Trip-count variable per [level][iterator].
  std::array<std::vector<VarId>, NumTileLevels> TripVars;
  bool HasArchVars = false;
  VarId RegCapVar = 0;  ///< R (co-design only).
  VarId SramCapVar = 0; ///< S (co-design only).
  VarId NumPEVar = 0;   ///< P (co-design only).
  bool HasEpigraph = false;
  VarId EpigraphVar = 0; ///< T (delay objective only).
};

/// Validates the user-reachable parts of \p Spec against \p Prob before
/// any GP is generated: the co-design area budget must be positive and
/// finite, the fixed architecture (DataflowOnly) must have non-zero
/// capacities, the technology constants actually used must be positive,
/// and the permutations/tiled-iterator lists must reference real
/// iterators. buildGp requires a spec that passes this check.
Status validateGpBuildSpec(const Problem &Prob, const GpBuildSpec &Spec);

/// Builds the GP for \p Prob under \p Spec. \p Spec must satisfy
/// validateGpBuildSpec; a failing spec yields an unusable program
/// (e.g. infinite variable bounds), not a diagnostic.
GpBuild buildGp(const Problem &Prob, const GpBuildSpec &Spec);

/// The real (pre-rounding) solution in mapping terms.
struct RealSolution {
  /// Trips[i][l]: real trip count of iterator i at level l.
  std::vector<std::array<double, NumTileLevels>> Trips;
  double RegWords = 0.0;  ///< R (solved or fixed).
  double SramWords = 0.0; ///< S.
  double NumPEs = 0.0;    ///< P.
  double Objective = 0.0; ///< GP objective value (model estimate).
};

/// Extracts the real solution from a feasible \p Solution of \p Build.
RealSolution extractSolution(const Problem &Prob, const GpBuild &Build,
                             const GpBuildSpec &Spec,
                             const GpSolution &Solution);

} // namespace thistle

#endif // THISTLE_THISTLE_GPBUILDER_H
