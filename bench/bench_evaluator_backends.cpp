//===- bench/bench_evaluator_backends.cpp - Evaluator throughput ----------===//
//
// Single-thread throughput of the pluggable cost-model backends on a
// Table II layer: evaluations per second of the nest walk, the
// MAESTRO-style data-centric model, and the cross-checking "both" mode
// (which runs the two models plus the counter diff on every call). The
// headline rates are appended to BENCH_parallel.json as an "evaluator"
// section so the cost of the cross-check — and any regression in either
// backend — is tracked across PRs.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "nestmodel/CostEvaluator.h"
#include "nestmodel/MaestroModel.h"
#include "support/MathUtil.h"
#include "support/Rng.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace thistle;
using namespace thistle::bench;

namespace {

constexpr unsigned Reps = 5;

/// Random valid MultiMapping by hierarchical divisor sampling (the same
/// scheme the cross-evaluator tests use).
MultiMapping randomMultiMapping(const Problem &P, unsigned NumLevels,
                                Rng &R) {
  const unsigned NumIters = P.numIterators();
  MultiMapping M;
  M.TempFactors.assign(NumLevels, std::vector<std::int64_t>(NumIters, 1));
  M.SpatialFactors.assign(NumIters, 1);
  for (unsigned I = 0; I < NumIters; ++I) {
    std::int64_t Rest = P.iterators()[I].Extent;
    for (unsigned L = 0; L + 1 < NumLevels; ++L) {
      std::int64_t F = R.pick(divisorsOf(Rest));
      M.TempFactors[L][I] = F;
      Rest /= F;
    }
    std::int64_t Sp = R.pick(divisorsOf(Rest));
    M.SpatialFactors[I] = Sp;
    M.TempFactors[NumLevels - 1][I] = Rest / Sp;
  }
  std::vector<unsigned> Identity(NumIters);
  for (unsigned I = 0; I < NumIters; ++I)
    Identity[I] = I;
  M.Perms.assign(NumLevels, Identity);
  for (unsigned L = 1; L < NumLevels; ++L)
    R.shuffle(M.Perms[L]);
  return M;
}

volatile double Sink;

/// Min-of-Reps evaluations/second of \p Eval over a fixed mapping pool.
double evalsPerSecond(const CostEvaluator &Eval, const Problem &Prob,
                      const Hierarchy &H,
                      const std::vector<MultiMapping> &Pool,
                      unsigned Rounds) {
  double Best = 0.0;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    WallTimer Timer;
    for (unsigned Round = 0; Round < Rounds; ++Round)
      for (const MultiMapping &M : Pool)
        Sink = Eval.evaluate(Prob, H, M).EnergyPj;
    double Rate = static_cast<double>(Pool.size()) * Rounds /
                  Timer.seconds();
    Best = std::max(Best, Rate);
  }
  return Best;
}

void appendSection(const char *Path, const std::string &Section) {
  std::string Existing;
  if (std::FILE *F = std::fopen(Path, "r")) {
    char Buf[4096];
    std::size_t Got;
    while ((Got = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
      Existing.append(Buf, Got);
    std::fclose(F);
  }
  std::size_t Close = Existing.rfind('}');
  std::string Out;
  if (Close == std::string::npos) {
    Out = "{\n" + Section + "}\n";
  } else {
    Out = Existing.substr(0, Close);
    while (!Out.empty() && (Out.back() == '\n' || Out.back() == ' '))
      Out.pop_back();
    Out += ",\n" + Section + "}\n";
  }
  if (std::FILE *F = std::fopen(Path, "w")) {
    std::fwrite(Out.data(), 1, Out.size(), F);
    std::fclose(F);
  } else {
    std::fprintf(stderr, "cannot write %s\n", Path);
  }
}

} // namespace

int main() {
  printHeader("Evaluator backend throughput",
              "Single-thread evaluations/second of the cost-model "
              "backends on a\nTable II layer (classic 3-level machine): "
              "the nest walk, the\ndata-centric maestro model, and the "
              "cross-checking both mode.");

  // ResNet-18 stage 8 — a mid-network 3x3 layer with a mix of large and
  // small extents, representative of the mapper's evaluation mix.
  Problem Prob = makeConvProblem(resnet18Layers()[7]);
  Hierarchy H =
      Hierarchy::classic3Level(eyerissArch(), TechParams::cgo45nm());

  Rng R(41);
  std::vector<MultiMapping> Pool;
  for (int I = 0; I < 64; ++I)
    Pool.push_back(randomMultiMapping(Prob, H.numLevels(), R));
  const unsigned Rounds = 40;

  CrossCheckEvaluator Both(nestCostEvaluator(), maestroCostEvaluator());
  struct Row {
    const char *Name;
    const CostEvaluator *Eval;
    double Rate = 0.0;
  } Rows[] = {
      {"nest", &nestCostEvaluator()},
      {"maestro", &maestroCostEvaluator()},
      {"both", &Both},
  };

  std::string Section = "  \"evaluator\": {\n";
  double NestRate = 0.0;
  for (Row &Entry : Rows) {
    Entry.Rate = evalsPerSecond(*Entry.Eval, Prob, H, Pool, Rounds);
    if (Entry.Eval == &nestCostEvaluator())
      NestRate = Entry.Rate;
    std::printf("%-10s %12.0f evals/s   (%.2fx nest)\n", Entry.Name,
                Entry.Rate, NestRate > 0.0 ? Entry.Rate / NestRate : 1.0);
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf), "    \"%s_evals_per_sec\": %.0f,\n",
                  Entry.Name, Entry.Rate);
    Section += Buf;
  }
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "    \"cross_check_overhead\": %.3f\n  }\n",
                Rows[2].Rate > 0.0 ? NestRate / Rows[2].Rate : 0.0);
  Section += Buf;

  // The whole point of the cross-check: zero divergence on real layers.
  CrossCheckStats S = Both.stats();
  std::printf("cross-check: %llu evals, %llu divergent\n",
              static_cast<unsigned long long>(S.Evals),
              static_cast<unsigned long long>(S.DivergentEvals));
  if (S.DivergentEvals) {
    std::fprintf(stderr, "error: nest and maestro diverged\n");
    return 1;
  }

  appendSection("BENCH_parallel.json", Section);
  std::printf("\nappended evaluator section to BENCH_parallel.json\n");
  return 0;
}
