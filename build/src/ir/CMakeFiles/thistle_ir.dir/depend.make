# Empty dependencies file for thistle_ir.
# This may be replaced when dependencies are built.
