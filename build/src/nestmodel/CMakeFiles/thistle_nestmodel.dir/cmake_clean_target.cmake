file(REMOVE_RECURSE
  "libthistle_nestmodel.a"
)
