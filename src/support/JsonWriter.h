//===- support/JsonWriter.h - Order-preserving JSON emitter -----*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tiny order-preserving JSON writer behind every machine-readable
/// artifact the project emits: the thistle-run-report/1 file written by
/// `thistle-opt --trace-json` and the newline-delimited thistle-serve/1
/// responses of the co-design server. Two layouts share one emitter:
/// pretty (two-space indent, one key per line — the run-report file) and
/// compact (no whitespace at all — wire responses, which must be exactly
/// one line). Field order is caller-controlled and values are emitted
/// deterministically (%.17g doubles, non-finite as null), so equal
/// inputs produce equal bytes in either layout.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_SUPPORT_JSONWRITER_H
#define THISTLE_SUPPORT_JSONWRITER_H

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>

namespace thistle {
namespace json {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
inline std::string escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// JSON number: finite doubles in shortest-ish round-trippable form,
/// non-finite as null (JSON has no inf/nan).
inline std::string number(double V) {
  if (!std::isfinite(V))
    return "null";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

/// Order-preserving structured writer: enough shape to keep emitters
/// readable without pulling in a library. Construct with Compact=true
/// for single-line output (the serve wire format).
class Writer {
public:
  explicit Writer(std::ostringstream &OS, bool Compact = false)
      : OS(OS), Compact(Compact) {}

  void beginObject() { punct("{"); }
  void endObject() { close("}"); }
  void beginArray() { punct("["); }
  void endArray() { close("]"); }

  void key(const char *K) {
    comma();
    indent();
    OS << '"' << K << (Compact ? "\":" : "\": ");
    PendingValue = true;
  }

  void value(const std::string &S) { raw('"' + escape(S) + '"'); }
  void value(const char *S) { value(std::string(S)); }
  void value(double V) { raw(number(V)); }
  void value(std::uint64_t V) { raw(std::to_string(V)); }
  void value(std::int64_t V) { raw(std::to_string(V)); }
  void value(unsigned V) { raw(std::to_string(V)); }
  void value(int V) { raw(std::to_string(V)); }
  void value(bool V) { raw(V ? "true" : "false"); }
  void null() { raw("null"); }

  /// Splices pre-serialized JSON (e.g. a compact sub-report) in as the
  /// next value; the caller vouches for its validity.
  void rawValue(const std::string &Json) { raw(Json); }

private:
  void comma() {
    if (NeedComma)
      OS << (Compact ? "," : ",\n");
    NeedComma = false;
  }
  void indent() {
    if (Compact || PendingValue)
      return;
    for (int I = 0; I < Depth; ++I)
      OS << "  ";
  }
  void punct(const char *Open) {
    comma();
    indent();
    PendingValue = false;
    OS << Open;
    if (!Compact)
      OS << "\n";
    ++Depth;
    NeedComma = false;
  }
  void close(const char *Close) {
    if (NeedComma && !Compact)
      OS << "\n";
    --Depth;
    NeedComma = false;
    PendingValue = false;
    indent();
    OS << Close;
    NeedComma = true;
  }
  void raw(const std::string &Text) {
    comma();
    indent();
    PendingValue = false;
    OS << Text;
    NeedComma = true;
  }

  std::ostringstream &OS;
  bool Compact = false;
  int Depth = 0;
  bool NeedComma = false;
  bool PendingValue = false;
};

} // namespace json
} // namespace thistle

#endif // THISTLE_SUPPORT_JSONWRITER_H
