//===- support/Persist.cpp - Crash-safe durable-state layer ---------------===//

#include "support/Persist.h"

#include "support/FaultInjection.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <filesystem>
#include <system_error>

using namespace thistle;
using namespace thistle::persist;

namespace {

/// Fault-site keys (see the header comment): one per durable artifact,
/// so a test can corrupt the snapshot without touching the journal.
constexpr std::int64_t FaultKeySnapshot = 0;
constexpr std::int64_t FaultKeyJournal = 1;

const std::array<std::uint32_t, 256> &crcTable() {
  static const std::array<std::uint32_t, 256> Table = [] {
    std::array<std::uint32_t, 256> T{};
    for (std::uint32_t I = 0; I < 256; ++I) {
      std::uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  return Table;
}

std::string crcHex(std::uint32_t Crc) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "%08x", Crc);
  return Buf;
}

/// RAII stdio handle so every early return closes the file.
struct FileHandle {
  std::FILE *F = nullptr;
  explicit FileHandle(std::FILE *F) : F(F) {}
  ~FileHandle() {
    if (F)
      std::fclose(F);
  }
  FileHandle(const FileHandle &) = delete;
  FileHandle &operator=(const FileHandle &) = delete;
};

/// Reads one header-style text line (up to \n, which is consumed).
/// False on EOF before any byte or on an unreasonably long line.
bool readLine(std::FILE *F, std::string &Out) {
  Out.clear();
  constexpr std::size_t MaxLine = 256;
  int C;
  while ((C = std::fgetc(F)) != EOF) {
    if (C == '\n')
      return true;
    Out += static_cast<char>(C);
    if (Out.size() > MaxLine)
      return false;
  }
  return false;
}

/// Splits a header line on single spaces.
std::vector<std::string> splitFields(const std::string &Line) {
  std::vector<std::string> Out;
  std::size_t Start = 0;
  while (Start <= Line.size()) {
    std::size_t End = Line.find(' ', Start);
    if (End == std::string::npos)
      End = Line.size();
    Out.push_back(Line.substr(Start, End - Start));
    Start = End + 1;
  }
  return Out;
}

bool parseSize(const std::string &Text, std::uint64_t &Out) {
  if (Text.empty() || Text.size() > 19)
    return false;
  Out = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    Out = Out * 10 + static_cast<std::uint64_t>(C - '0');
  }
  return true;
}

bool parseCrc(const std::string &Text, std::uint32_t &Out) {
  if (Text.size() != 8)
    return false;
  Out = 0;
  for (char C : Text) {
    std::uint32_t Digit;
    if (C >= '0' && C <= '9')
      Digit = static_cast<std::uint32_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Digit = static_cast<std::uint32_t>(C - 'a') + 10;
    else
      return false;
    Out = Out * 16 + Digit;
  }
  return true;
}

/// Applies the torn-write / corrupt-crc fault sites to a payload about
/// to be written. The CRC in the frame header is computed from the
/// *intact* payload, so the damage is detectable on load.
std::string maimPayload(std::string Payload, std::int64_t FaultKey) {
  if (fault::shouldFail("persist.torn-write", FaultKey))
    Payload.resize(Payload.size() / 2);
  if (fault::shouldFail("persist.corrupt-crc", FaultKey) &&
      !Payload.empty())
    Payload[Payload.size() / 2] ^= 0x40;
  return Payload;
}

} // namespace

std::uint32_t persist::crc32(const void *Data, std::size_t Size,
                             std::uint32_t Seed) {
  const auto &Table = crcTable();
  std::uint32_t C = Seed ^ 0xFFFFFFFFu;
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (std::size_t I = 0; I < Size; ++I)
    C = Table[(C ^ P[I]) & 0xFFu] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

//===----------------------------------------------------------------------===//
// Encoder / Decoder
//===----------------------------------------------------------------------===//

void Encoder::putU32(std::uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Buf += static_cast<char>((V >> (8 * I)) & 0xFFu);
}

void Encoder::putU64(std::uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Buf += static_cast<char>((V >> (8 * I)) & 0xFFu);
}

void Encoder::putI64(std::int64_t V) {
  putU64(static_cast<std::uint64_t>(V));
}

void Encoder::putDouble(double V) {
  std::uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V), "IEEE-754 double expected");
  std::memcpy(&Bits, &V, sizeof(Bits));
  putU64(Bits);
}

void Encoder::putString(std::string_view S) {
  putU64(S.size());
  Buf.append(S.data(), S.size());
}

bool Decoder::take(std::size_t N, const char *&Out) {
  if (Failed || Data.size() - Pos < N) {
    Failed = true;
    return false;
  }
  Out = Data.data() + Pos;
  Pos += N;
  return true;
}

bool Decoder::getU32(std::uint32_t &Out) {
  const char *P;
  if (!take(4, P))
    return false;
  Out = 0;
  for (int I = 3; I >= 0; --I)
    Out = (Out << 8) | static_cast<unsigned char>(P[I]);
  return true;
}

bool Decoder::getU64(std::uint64_t &Out) {
  const char *P;
  if (!take(8, P))
    return false;
  Out = 0;
  for (int I = 7; I >= 0; --I)
    Out = (Out << 8) | static_cast<unsigned char>(P[I]);
  return true;
}

bool Decoder::getI64(std::int64_t &Out) {
  std::uint64_t U;
  if (!getU64(U))
    return false;
  Out = static_cast<std::int64_t>(U);
  return true;
}

bool Decoder::getBool(bool &Out) {
  std::uint32_t U;
  if (!getU32(U))
    return false;
  if (U > 1) {
    Failed = true;
    return false;
  }
  Out = U == 1;
  return true;
}

bool Decoder::getDouble(double &Out) {
  std::uint64_t Bits;
  if (!getU64(Bits))
    return false;
  std::memcpy(&Out, &Bits, sizeof(Out));
  return true;
}

bool Decoder::getString(std::string &Out) {
  std::uint64_t Size;
  if (!getU64(Size))
    return false;
  // Checked against the raw u64 before the size_t cast, so a huge
  // length prefix cannot truncate on 32-bit size_t and pass take().
  if (Size > remaining()) {
    Failed = true;
    return false;
  }
  const char *P;
  if (!take(static_cast<std::size_t>(Size), P))
    return false;
  Out.assign(P, static_cast<std::size_t>(Size));
  return true;
}

//===----------------------------------------------------------------------===//
// Snapshot files
//===----------------------------------------------------------------------===//

Status persist::writeSnapshotFile(const std::string &Path,
                                  const std::string &Kind,
                                  const std::string &Payload) {
  if (fault::shouldFail("persist.write-fail", FaultKeySnapshot))
    return Status::error(StatusCode::DataLoss,
                         "injected fault at site persist.write-fail");
  const std::string Header = std::string(SnapshotMagic) + " snap " + Kind +
                             " " + std::to_string(Payload.size()) + " " +
                             crcHex(crc32(Payload.data(), Payload.size())) +
                             "\n";
  // The header advertises the intact payload; injected damage below is
  // exactly what the CRC/size check on load exists to catch.
  const std::string Body = maimPayload(Payload, FaultKeySnapshot);

  const std::string Temp = Path + ".tmp";
  {
    std::FILE *Raw = std::fopen(Temp.c_str(), "wb");
    if (!Raw)
      return Status::error(StatusCode::DataLoss,
                           "cannot create temporary '" + Temp + "'");
    FileHandle F(Raw);
    if (std::fwrite(Header.data(), 1, Header.size(), Raw) !=
            Header.size() ||
        std::fwrite(Body.data(), 1, Body.size(), Raw) != Body.size() ||
        std::fflush(Raw) != 0) {
      std::remove(Temp.c_str());
      return Status::error(StatusCode::DataLoss,
                           "short write to '" + Temp + "'");
    }
  }
  // The atomic-replace step: a reader sees either the old snapshot or
  // the complete new one, never a mixture.
  if (std::rename(Temp.c_str(), Path.c_str()) != 0) {
    std::remove(Temp.c_str());
    return Status::error(StatusCode::DataLoss,
                         "cannot rename '" + Temp + "' over '" + Path +
                             "'");
  }
  return Status::ok();
}

Expected<std::string> persist::readSnapshotFile(const std::string &Path,
                                                const std::string &Kind) {
  std::FILE *Raw = std::fopen(Path.c_str(), "rb");
  if (!Raw)
    return Status::error(StatusCode::NotFound,
                         "no snapshot at '" + Path + "'");
  FileHandle F(Raw);

  std::string Line;
  if (!readLine(Raw, Line))
    return Status::error(StatusCode::DataLoss,
                         "'" + Path + "': empty or headerless file");
  std::vector<std::string> Fields = splitFields(Line);
  std::uint64_t Size;
  std::uint32_t WantCrc;
  if (Fields.size() != 5 || Fields[1] != "snap" ||
      !parseSize(Fields[3], Size) || !parseCrc(Fields[4], WantCrc))
    return Status::parseError("'" + Path + "': unrecognized header '" +
                              Line + "'");
  if (Fields[0] != SnapshotMagic)
    return Status::parseError("'" + Path + "': version '" + Fields[0] +
                              "' is not '" + SnapshotMagic + "'");
  if (Fields[2] != Kind)
    return Status::parseError("'" + Path + "': holds '" + Fields[2] +
                              "' state, wanted '" + Kind + "'");

  std::string Payload(static_cast<std::size_t>(Size), '\0');
  const std::size_t Got =
      Payload.empty() ? 0
                      : std::fread(Payload.data(), 1, Payload.size(), Raw);
  if (Got != Payload.size())
    return Status::error(StatusCode::DataLoss,
                         "'" + Path + "': truncated payload (" +
                             std::to_string(Got) + " of " +
                             std::to_string(Size) + " bytes)");
  const std::uint32_t GotCrc = crc32(Payload.data(), Payload.size());
  if (GotCrc != WantCrc)
    return Status::error(StatusCode::DataLoss,
                         "'" + Path + "': CRC mismatch (stored " +
                             crcHex(WantCrc) + ", computed " +
                             crcHex(GotCrc) + ")");
  return Payload;
}

//===----------------------------------------------------------------------===//
// Journal files
//===----------------------------------------------------------------------===//

Status JournalWriter::open(const std::string &Path,
                           const std::string &Kind) {
  close();
  // "a" keeps existing records (the self-resume case); the header is
  // only written when the file starts empty.
  std::FILE *Raw = std::fopen(Path.c_str(), "ab");
  if (!Raw)
    return Status::error(StatusCode::DataLoss,
                         "cannot open journal '" + Path + "'");
  long End = std::ftell(Raw);
  if (End == 0) {
    const std::string Header =
        std::string(SnapshotMagic) + " journal " + Kind + "\n";
    if (std::fwrite(Header.data(), 1, Header.size(), Raw) !=
            Header.size() ||
        std::fflush(Raw) != 0) {
      std::fclose(Raw);
      return Status::error(StatusCode::DataLoss,
                           "cannot write journal header to '" + Path +
                               "'");
    }
  }
  File = Raw;
  return Status::ok();
}

Status JournalWriter::append(const std::string &Payload) {
  if (!File)
    return Status::error(StatusCode::DataLoss, "journal is not open");
  if (fault::shouldFail("persist.write-fail", FaultKeyJournal))
    return Status::error(StatusCode::DataLoss,
                         "injected fault at site persist.write-fail");
  const std::string Frame =
      "rec " + std::to_string(Payload.size()) + " " +
      crcHex(crc32(Payload.data(), Payload.size())) + "\n";
  const std::string Body = maimPayload(Payload, FaultKeyJournal);
  if (std::fwrite(Frame.data(), 1, Frame.size(), File) != Frame.size() ||
      std::fwrite(Body.data(), 1, Body.size(), File) != Body.size() ||
      std::fwrite("\n", 1, 1, File) != 1 || std::fflush(File) != 0)
    return Status::error(StatusCode::DataLoss, "short journal append");
  return Status::ok();
}

void JournalWriter::close() {
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
}

Expected<JournalContents> persist::readJournalFile(const std::string &Path,
                                                   const std::string &Kind) {
  std::FILE *Raw = std::fopen(Path.c_str(), "rb");
  if (!Raw)
    return Status::error(StatusCode::NotFound,
                         "no journal at '" + Path + "'");
  FileHandle F(Raw);

  std::string Line;
  if (!readLine(Raw, Line))
    return Status::error(StatusCode::DataLoss,
                         "'" + Path + "': empty or headerless file");
  std::vector<std::string> Fields = splitFields(Line);
  if (Fields.size() != 3 || Fields[1] != "journal")
    return Status::parseError("'" + Path + "': unrecognized header '" +
                              Line + "'");
  if (Fields[0] != SnapshotMagic)
    return Status::parseError("'" + Path + "': version '" + Fields[0] +
                              "' is not '" + SnapshotMagic + "'");
  if (Fields[2] != Kind)
    return Status::parseError("'" + Path + "': holds '" + Fields[2] +
                              "' state, wanted '" + Kind + "'");

  JournalContents Out;
  // Anything wrong from here on is a torn or corrupt tail: keep the
  // intact prefix, describe the damage, and stop. A journal cut short
  // by SIGKILL is the expected shape of a crash, not a load error.
  auto tear = [&](const std::string &Why) {
    Out.Truncated = true;
    Out.Problem = "'" + Path + "': " + Why + " after " +
                  std::to_string(Out.Records.size()) +
                  " intact record(s); dropping the damaged tail";
    return Out;
  };
  for (;;) {
    std::string Frame;
    if (!readLine(Raw, Frame)) {
      if (Frame.empty())
        return Out; // Clean EOF on a frame boundary.
      return tear("torn record frame");
    }
    std::vector<std::string> Rec = splitFields(Frame);
    std::uint64_t Size;
    std::uint32_t WantCrc;
    if (Rec.size() != 3 || Rec[0] != "rec" || !parseSize(Rec[1], Size) ||
        !parseCrc(Rec[2], WantCrc))
      return tear("unrecognized record frame '" + Frame + "'");
    std::string Payload(static_cast<std::size_t>(Size), '\0');
    const std::size_t Got =
        Payload.empty() ? 0
                        : std::fread(Payload.data(), 1, Payload.size(), Raw);
    if (Got != Payload.size())
      return tear("torn record payload (" + std::to_string(Got) + " of " +
                  std::to_string(Size) + " bytes)");
    if (crc32(Payload.data(), Payload.size()) != WantCrc)
      return tear("record CRC mismatch");
    int Sep = std::fgetc(Raw);
    if (Sep != '\n')
      return tear("missing record separator");
    Out.Records.push_back(std::move(Payload));
  }
}

//===----------------------------------------------------------------------===//
// Filesystem helpers
//===----------------------------------------------------------------------===//

bool persist::fileExists(const std::string &Path) {
  std::error_code Ec;
  return std::filesystem::is_regular_file(Path, Ec);
}

Status persist::createDirectories(const std::string &Path) {
  std::error_code Ec;
  std::filesystem::create_directories(Path, Ec);
  if (Ec)
    return Status::invalidArgument("cannot create directory '" + Path +
                                   "': " + Ec.message());
  if (!std::filesystem::is_directory(Path, Ec))
    return Status::invalidArgument("'" + Path + "' is not a directory");
  return Status::ok();
}

Status persist::removeFile(const std::string &Path) {
  std::error_code Ec;
  std::filesystem::remove(Path, Ec);
  if (Ec)
    return Status::error(StatusCode::DataLoss,
                         "cannot remove '" + Path + "': " + Ec.message());
  return Status::ok();
}

std::vector<std::string> persist::listFiles(const std::string &Dir,
                                            const std::string &Prefix,
                                            const std::string &Suffix) {
  std::vector<std::string> Out;
  std::error_code Ec;
  std::filesystem::directory_iterator It(Dir, Ec), End;
  if (Ec)
    return Out;
  for (; It != End; It.increment(Ec)) {
    if (Ec)
      break;
    if (!It->is_regular_file(Ec))
      continue;
    const std::string Name = It->path().filename().string();
    if (Name.size() < Prefix.size() + Suffix.size() ||
        Name.compare(0, Prefix.size(), Prefix) != 0 ||
        Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) !=
            0)
      continue;
    Out.push_back((std::filesystem::path(Dir) / Name).string());
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}
