//===- bench/bench_simd_kernels.cpp - Kernel-layer SIMD throughput --------===//
//
// Single-thread micro-benchmarks of the linalg kernel layer against the
// naive scalar loops the solver used before the layer existed: blocked
// dot, axpy, the fused exp-and-accumulate of log-sum-exp assembly, and
// the dense Cholesky factor+solve. Timings are min-of-N over many inner
// iterations; the headline speedups are appended to BENCH_parallel.json
// as a "simd" section so the perf trajectory is tracked across PRs.
//
// The naive references live in this translation unit, which is built
// with the project's default flags — exactly how the pre-kernel solver
// code was compiled — while the kernels come from the Kernels.cpp TU
// built under THISTLE_SIMD. The comparison is therefore the real
// before/after of the kernel layer, not a strawman.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "linalg/Kernels.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace thistle;
using namespace thistle::bench;

namespace {

constexpr unsigned Reps = 5;

/// xorshift-style deterministic fill in (0.1, 1.1) — safely away from
/// zero so Cholesky pivots stay positive.
void fill(std::vector<double> &V, std::uint64_t Seed) {
  std::uint64_t S = Seed * 2654435761u + 1;
  for (double &X : V) {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    X = 0.1 + static_cast<double>(S % 1000003) / 1000003.0;
  }
}

// ---- Naive references (the seed's scalar loops). -----------------------

double naiveDot(const double *A, const double *B, std::size_t N) {
  double S = 0.0;
  for (std::size_t I = 0; I < N; ++I)
    S += A[I] * B[I];
  return S;
}

void naiveAxpy(double *Y, double Alpha, const double *X, std::size_t N) {
  for (std::size_t I = 0; I < N; ++I)
    Y[I] += Alpha * X[I];
}

double naiveExpAccum(double *E, std::size_t N, double Max) {
  double S = 0.0;
  for (std::size_t I = 0; I < N; ++I) {
    E[I] = std::exp(E[I] - Max);
    S += E[I];
  }
  return S;
}

bool naiveCholeskySolve(double *A, std::size_t N, const double *B,
                        double *X) {
  for (std::size_t J = 0; J < N; ++J) {
    double Diag = A[J * N + J] - naiveDot(A + J * N, A + J * N, J);
    if (!(Diag > 0.0) || !std::isfinite(Diag))
      return false;
    double L = std::sqrt(Diag);
    A[J * N + J] = L;
    for (std::size_t I = J + 1; I < N; ++I)
      A[I * N + J] = (A[I * N + J] - naiveDot(A + I * N, A + J * N, J)) / L;
  }
  for (std::size_t I = 0; I < N; ++I)
    X[I] = (B[I] - naiveDot(A + I * N, X, I)) / A[I * N + I];
  for (std::size_t II = N; II > 0; --II) {
    std::size_t I = II - 1;
    double S = 0.0;
    for (std::size_t J = I + 1; J < N; ++J)
      S += A[J * N + I] * X[J]; // Column access: the pre-kernel layout.
    X[I] = (X[I] - S) / A[I * N + I];
  }
  return true;
}

// ---- Timing. -----------------------------------------------------------

struct KernelTiming {
  const char *Name;
  double NaiveSeconds;
  double KernelSeconds;
  double speedup() const { return NaiveSeconds / KernelSeconds; }
};

volatile double Sink; // Defeats dead-code elimination of timed loops.

KernelTiming timeDot(std::size_t N, unsigned Iters) {
  std::vector<double> A(N), B(N);
  fill(A, 1);
  fill(B, 2);
  KernelTiming T{"dot", 0.0, 0.0};
  T.NaiveSeconds = minSecondsOfN(Reps, [&] {
    double S = 0.0;
    for (unsigned I = 0; I < Iters; ++I)
      S += naiveDot(A.data(), B.data(), N);
    Sink = S;
  });
  T.KernelSeconds = minSecondsOfN(Reps, [&] {
    double S = 0.0;
    for (unsigned I = 0; I < Iters; ++I)
      S += kernels::dot(A.data(), B.data(), N);
    Sink = S;
  });
  return T;
}

KernelTiming timeAxpy(std::size_t N, unsigned Iters) {
  std::vector<double> Y(N), X(N);
  fill(X, 3);
  KernelTiming T{"axpy", 0.0, 0.0};
  T.NaiveSeconds = minSecondsOfN(Reps, [&] {
    std::fill(Y.begin(), Y.end(), 0.0);
    for (unsigned I = 0; I < Iters; ++I)
      naiveAxpy(Y.data(), 1e-6, X.data(), N);
    Sink = Y[0];
  });
  T.KernelSeconds = minSecondsOfN(Reps, [&] {
    std::fill(Y.begin(), Y.end(), 0.0);
    for (unsigned I = 0; I < Iters; ++I)
      kernels::axpy(Y.data(), 1e-6, X.data(), N);
    Sink = Y[0];
  });
  return T;
}

KernelTiming timeExpAccum(std::size_t N, unsigned Iters) {
  std::vector<double> E0(N), E(N);
  fill(E0, 4);
  KernelTiming T{"exp_accum", 0.0, 0.0};
  T.NaiveSeconds = minSecondsOfN(Reps, [&] {
    double S = 0.0;
    for (unsigned I = 0; I < Iters; ++I) {
      E = E0;
      S += naiveExpAccum(E.data(), N, 1.1);
    }
    Sink = S;
  });
  T.KernelSeconds = minSecondsOfN(Reps, [&] {
    double S = 0.0;
    for (unsigned I = 0; I < Iters; ++I) {
      E = E0;
      S += kernels::expAccum(E.data(), N, 1.1);
    }
    Sink = S;
  });
  return T;
}

KernelTiming timeCholesky(std::size_t N, unsigned Iters) {
  // SPD system: G^T G + N * I, built once; each iteration re-factors a
  // fresh copy (factorization is in-place).
  std::vector<double> G(N * N), SPD(N * N, 0.0), B(N), A(N * N), X(N),
      Scratch(N * N);
  fill(G, 5);
  fill(B, 6);
  for (std::size_t I = 0; I < N; ++I)
    for (std::size_t J = 0; J < N; ++J) {
      double S = 0.0;
      for (std::size_t K = 0; K < N; ++K)
        S += G[K * N + I] * G[K * N + J];
      SPD[I * N + J] = S + (I == J ? static_cast<double>(N) : 0.0);
    }
  KernelTiming T{"cholesky", 0.0, 0.0};
  T.NaiveSeconds = minSecondsOfN(Reps, [&] {
    double S = 0.0;
    for (unsigned I = 0; I < Iters; ++I) {
      std::memcpy(A.data(), SPD.data(), N * N * sizeof(double));
      std::fill(X.begin(), X.end(), 0.0);
      naiveCholeskySolve(A.data(), N, B.data(), X.data());
      S += X[0];
    }
    Sink = S;
  });
  T.KernelSeconds = minSecondsOfN(Reps, [&] {
    double S = 0.0;
    for (unsigned I = 0; I < Iters; ++I) {
      std::memcpy(A.data(), SPD.data(), N * N * sizeof(double));
      std::fill(X.begin(), X.end(), 0.0);
      kernels::choleskySolveInPlace(A.data(), N, B.data(), X.data(),
                                    Scratch.data());
      S += X[0];
    }
    Sink = S;
  });
  return T;
}

/// Appends a "simd" section to the JSON object in \p Path (written by
/// bench_parallel_speedup): splices before the final '}'. Writes a fresh
/// object when the file is missing.
void appendSimdSection(const char *Path, const std::string &Section) {
  std::string Existing;
  if (std::FILE *F = std::fopen(Path, "r")) {
    char Buf[4096];
    std::size_t Got;
    while ((Got = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
      Existing.append(Buf, Got);
    std::fclose(F);
  }
  std::size_t Close = Existing.rfind('}');
  std::string Out;
  if (Close == std::string::npos) {
    Out = "{\n" + Section + "}\n";
  } else {
    Out = Existing.substr(0, Close);
    while (!Out.empty() && (Out.back() == '\n' || Out.back() == ' '))
      Out.pop_back();
    Out += ",\n" + Section + "}\n";
  }
  if (std::FILE *F = std::fopen(Path, "w")) {
    std::fwrite(Out.data(), 1, Out.size(), F);
    std::fclose(F);
  } else {
    std::fprintf(stderr, "cannot write %s\n", Path);
  }
}

} // namespace

int main() {
  printHeader("SIMD kernel throughput",
              "Single-thread kernel-layer timings against the naive "
              "scalar loops the\nsolver used before the kernel layer "
              "(min-of-N, many inner iterations).\nAll kernels are "
              "bit-identical to their references across every\n"
              "THISTLE_SIMD setting; only the speed differs.");

  std::printf("backend: %s (pack width %zu)\n\n", kernels::backendName(),
              kernels::packWidth());

  // Sizes chosen to match the solver's regime: LSE rows and Newton
  // systems are tens of variables, Hessian sweeps touch hundreds of
  // contiguous doubles.
  KernelTiming Timings[] = {
      timeDot(256, 200000),
      timeAxpy(256, 200000),
      timeExpAccum(128, 100000),
      timeCholesky(48, 4000),
  };

  double MinSpeedup = Timings[0].speedup();
  std::string Section = "  \"simd\": {\n    \"backend\": \"" +
                        std::string(kernels::backendName()) + "\",\n";
  for (const KernelTiming &T : Timings) {
    std::printf("%-10s naive %8.4fs   kernels %8.4fs   speedup %.2fx\n",
                T.Name, T.NaiveSeconds, T.KernelSeconds, T.speedup());
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf), "    \"%s_speedup\": %.3f,\n", T.Name,
                  T.speedup());
    Section += Buf;
    MinSpeedup = std::min(MinSpeedup, T.speedup());
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "    \"min_speedup\": %.3f\n  }\n",
                MinSpeedup);
  Section += Buf;

  appendSimdSection("BENCH_parallel.json", Section);
  std::printf("\nappended simd section to BENCH_parallel.json\n");
  return 0;
}
