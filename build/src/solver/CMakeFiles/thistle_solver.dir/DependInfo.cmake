
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/GpProblem.cpp" "src/solver/CMakeFiles/thistle_solver.dir/GpProblem.cpp.o" "gcc" "src/solver/CMakeFiles/thistle_solver.dir/GpProblem.cpp.o.d"
  "/root/repo/src/solver/GpSolver.cpp" "src/solver/CMakeFiles/thistle_solver.dir/GpSolver.cpp.o" "gcc" "src/solver/CMakeFiles/thistle_solver.dir/GpSolver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/thistle_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/thistle_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
