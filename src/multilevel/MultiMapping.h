//===- multilevel/MultiMapping.h - L-level tiled mappings -------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The arbitrary-depth generalization of ir/Mapping: per iterator, one
/// trip count per temporal level plus one spatial trip count, and one
/// loop permutation per temporal level >= 1 (the loops of level l
/// enumerate level-(l-1) tiles). For a 3-level hierarchy with fan-out
/// below level 1 this is isomorphic to the fixed 4-level Mapping
/// (register = level-0 factors, PeTemporal = level-1, DramTemporal =
/// level-2), which the tests exploit for cross-validation.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_MULTILEVEL_MULTIMAPPING_H
#define THISTLE_MULTILEVEL_MULTIMAPPING_H

#include "ir/Mapping.h"
#include "ir/Problem.h"
#include "multilevel/Hierarchy.h"

#include <cstdint>
#include <string>
#include <vector>

namespace thistle {

/// A complete tiling of one Problem onto an L-level hierarchy.
struct MultiMapping {
  /// TempFactors[l][i]: trip count of iterator i at temporal level l
  /// (l = 0 is the innermost tile size). Size: numLevels x numIterators.
  std::vector<std::vector<std::int64_t>> TempFactors;
  /// Spatial trip count per iterator (the PE fan-out).
  std::vector<std::int64_t> SpatialFactors;
  /// Perms[l] for l >= 1: outer-to-inner iterator order of level l's
  /// loops. Perms[0] is unused (level-0 loops move no data) but must
  /// still be a valid permutation.
  std::vector<std::vector<unsigned>> Perms;

  unsigned numLevels() const { return TempFactors.size(); }

  /// Tile extents of level \p Level in hierarchy \p H: the data tile
  /// resident in a level-L buffer spans prod_{k<=L} t_k per iterator,
  /// times the spatial factor for shared levels (>= H.FanoutLevel).
  std::vector<std::int64_t> tileExtents(const Hierarchy &H,
                                        unsigned Level) const;

  /// Per-PE slice extents of the first shared level (the step size of a
  /// PE's spatial coordinate).
  std::vector<std::int64_t> sliceExtents(const Hierarchy &H) const;

  std::int64_t numPEsUsed() const;

  /// Empty string if consistent with \p Prob and \p H.
  std::string validate(const Problem &Prob, const Hierarchy &H) const;

  /// Everything at level 0, identity permutations.
  static MultiMapping untiled(const Problem &Prob, unsigned NumLevels);

  /// Lifts a fixed 4-level Mapping onto a 3-level hierarchy (register /
  /// first shared / outer): level-0 = register factors, level-1 =
  /// PeTemporal, level-2 = DramTemporal, spatial = spatial.
  static MultiMapping fromMapping(const Problem &Prob, const Mapping &Map);

  /// The inverse of fromMapping; requires numLevels() == 3.
  Mapping toMapping() const;
};

} // namespace thistle

#endif // THISTLE_MULTILEVEL_MULTIMAPPING_H
