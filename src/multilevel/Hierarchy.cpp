//===- multilevel/Hierarchy.cpp - Arbitrary-depth memory hierarchies ------===//

#include "multilevel/Hierarchy.h"

#include <cstdlib>
#include <sstream>

using namespace thistle;

std::string Hierarchy::validate() const {
  std::ostringstream Err;
  if (Levels.size() < 2)
    return "hierarchy needs at least two levels";
  if (FanoutLevel < 1 || FanoutLevel >= Levels.size()) {
    Err << "fan-out level " << FanoutLevel << " out of range [1, "
        << Levels.size() - 1 << "]";
    return Err.str();
  }
  if (NumPEs < 1)
    return "hierarchy needs at least one PE";
  for (std::size_t L = 0; L + 1 < Levels.size(); ++L)
    if (Levels[L].CapacityWords < 1) {
      Err << "level " << Levels[L].Name << " has no capacity";
      return Err.str();
    }
  for (const HierarchyLevel &L : Levels) {
    if (L.AccessEnergyPj < 0.0)
      return "negative access energy at level " + L.Name;
    if (L.Bandwidth <= 0.0)
      return "non-positive bandwidth at level " + L.Name;
  }
  return std::string();
}

double Hierarchy::areaUm2(const TechParams &Tech) const {
  double PerPE = Tech.AreaMacUm2 +
                 Tech.AreaRegWordUm2 * static_cast<double>(
                                           Levels[0].CapacityWords);
  for (unsigned L = 1; L < FanoutLevel; ++L)
    PerPE += Tech.AreaSramWordUm2 *
             static_cast<double>(Levels[L].CapacityWords);
  double Shared = 0.0;
  for (unsigned L = FanoutLevel; L + 1 < Levels.size(); ++L)
    Shared += Tech.AreaSramWordUm2 *
              static_cast<double>(Levels[L].CapacityWords);
  return PerPE * static_cast<double>(NumPEs) + Shared;
}

Hierarchy Hierarchy::classic3Level(const ArchConfig &Arch,
                                   const TechParams &Tech) {
  EnergyModel Energy(Tech);
  Hierarchy H;
  H.FanoutLevel = 1;
  H.NumPEs = Arch.NumPEs;
  H.MacEnergyPj = Energy.macPj();
  H.Levels = {
      {"RegisterFile", Arch.RegWordsPerPE,
       Energy.regAccessPj(static_cast<double>(Arch.RegWordsPerPE)),
       /*Bandwidth=*/1e9}, // Register accesses are part of the MAC pipe.
      {"SRAM", Arch.SramWords,
       Energy.sramAccessPj(static_cast<double>(Arch.SramWords)),
       Arch.SramBandwidth},
      {"DRAM", 0, Energy.dramAccessPj(), Arch.DramBandwidth},
  };
  return H;
}

Hierarchy Hierarchy::classic3Shape() {
  Hierarchy H;
  H.FanoutLevel = 1;
  H.NumPEs = 1;
  H.Levels = {
      {"RegisterFile", 1, 0.0, 1.0},
      {"SRAM", 1, 0.0, 1.0},
      {"DRAM", 0, 0.0, 1.0},
  };
  return H;
}

Hierarchy Hierarchy::withScratchpad(const ArchConfig &Arch,
                                    const TechParams &Tech,
                                    std::int64_t SpadWords,
                                    std::int64_t SramWords) {
  EnergyModel Energy(Tech);
  Hierarchy H;
  H.FanoutLevel = 2; // Registers and scratchpad are per PE.
  H.NumPEs = Arch.NumPEs;
  H.MacEnergyPj = Energy.macPj();
  H.Levels = {
      {"RegisterFile", Arch.RegWordsPerPE,
       Energy.regAccessPj(static_cast<double>(Arch.RegWordsPerPE)),
       /*Bandwidth=*/1e9},
      // The per-PE scratchpad is priced like a small SRAM (Eq. 4).
      {"Scratchpad", SpadWords,
       Energy.sramAccessPj(static_cast<double>(SpadWords)),
       /*Bandwidth=*/4.0},
      {"SRAM", SramWords,
       Energy.sramAccessPj(static_cast<double>(SramWords)),
       Arch.SramBandwidth},
      {"DRAM", 0, Energy.dramAccessPj(), Arch.DramBandwidth},
  };
  return H;
}

bool thistle::parseHierarchy(const std::string &Text, Hierarchy &Out,
                             std::string &Error) {
  Hierarchy H;
  H.Levels.clear();
  bool SawFanout = false;

  std::istringstream Lines(Text);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(Lines, Line)) {
    ++LineNo;
    std::size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.resize(Hash);
    std::istringstream Fields(Line);
    std::string Key;
    if (!(Fields >> Key))
      continue; // Blank or comment-only line.

    std::ostringstream Err;
    auto fail = [&](const std::string &What) {
      Err << "line " << LineNo << ": " << What;
      Error = Err.str();
      return false;
    };

    if (Key == "pes") {
      if (!(Fields >> H.NumPEs))
        return fail("'pes' wants an integer");
    } else if (Key == "mac-pj") {
      if (!(Fields >> H.MacEnergyPj))
        return fail("'mac-pj' wants a number");
    } else if (Key == "fanout") {
      if (!(Fields >> H.FanoutLevel))
        return fail("'fanout' wants a level index");
      SawFanout = true;
    } else if (Key == "level") {
      HierarchyLevel L;
      std::string Capacity;
      if (!(Fields >> L.Name >> Capacity >> L.AccessEnergyPj >> L.Bandwidth))
        return fail("'level' wants: name capacity access-pj bandwidth");
      L.CapacityWords =
          Capacity == "-" ? 0 : std::atoll(Capacity.c_str());
      H.Levels.push_back(L);
    } else {
      return fail("unknown key '" + Key + "'");
    }
    std::string Extra;
    if (Fields >> Extra)
      return fail("trailing field '" + Extra + "'");
  }

  if (!SawFanout)
    H.FanoutLevel = 1;
  std::string Why = H.validate();
  if (!Why.empty()) {
    Error = Why;
    return false;
  }
  Out = H;
  return true;
}
