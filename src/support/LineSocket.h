//===- support/LineSocket.h - Newline-delimited TCP I/O ---------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport under the thistle-serve wire protocol
/// (docs/SERVING.md): loopback TCP carrying one JSON document per
/// newline-terminated line in each direction. Three small pieces:
///
///  - LineConnection: a connected socket with buffered readLine()
///    (strips the trailing '\n', tolerates '\r\n') and all-or-nothing
///    writeLine(). A line-length cap bounds per-client memory.
///  - LineListener: a 127.0.0.1 listener with ephemeral-port support
///    (port 0 → kernel picks; boundPort() reports it) and a poll-based
///    accept() that wakes periodically so the server can observe
///    shutdown flags.
///  - connectLoopback(): the client side.
///
/// POSIX sockets only — the rest of the project is already
/// POSIX-shaped (Persist.cpp). Errors surface as Status, never as
/// exceptions, and SIGPIPE is avoided via MSG_NOSIGNAL/SO_NOSIGPIPE so
/// a client hanging up mid-response cannot kill the daemon.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_SUPPORT_LINESOCKET_H
#define THISTLE_SUPPORT_LINESOCKET_H

#include "support/Status.h"

#include <cstdint>
#include <string>

namespace thistle {
namespace net {

/// One connected, newline-framed peer (either direction).
class LineConnection {
public:
  LineConnection() = default;
  explicit LineConnection(int Fd) : Fd(Fd) {}
  ~LineConnection() { close(); }

  LineConnection(LineConnection &&Other) noexcept { *this = std::move(Other); }
  LineConnection &operator=(LineConnection &&Other) noexcept {
    if (this != &Other) {
      close();
      Fd = Other.Fd;
      Buffer = std::move(Other.Buffer);
      Other.Fd = -1;
      Other.Buffer.clear();
    }
    return *this;
  }
  LineConnection(const LineConnection &) = delete;
  LineConnection &operator=(const LineConnection &) = delete;

  bool isOpen() const { return Fd >= 0; }
  void close();

  /// Half-closes both directions without releasing the descriptor:
  /// a reader blocked in readLine() (possibly on another thread) wakes
  /// with EOF/DataLoss. This is how the daemon unsticks idle connection
  /// threads at shutdown; close() itself stays single-threaded.
  void shutdownBoth();

  /// Reads the next '\n'-terminated line (terminator stripped, a
  /// trailing '\r' too). Returns NotFound on clean EOF with no pending
  /// partial line, DataLoss on I/O errors or an over-long line.
  Expected<std::string> readLine();

  /// Writes Line plus a trailing '\n', retrying short writes until the
  /// whole frame is out. DataLoss on error (including peer reset).
  Status writeLine(const std::string &Line);

  /// Longest accepted incoming line; a peer exceeding it is an error,
  /// not an unbounded buffer. Network-query responses stay well under.
  static constexpr std::size_t MaxLineBytes = 8u << 20;

private:
  int Fd = -1;
  std::string Buffer;
};

/// A loopback TCP listener.
class LineListener {
public:
  LineListener() = default;
  ~LineListener() { close(); }
  LineListener(const LineListener &) = delete;
  LineListener &operator=(const LineListener &) = delete;

  /// Binds and listens on 127.0.0.1:Port. Port 0 asks the kernel for an
  /// ephemeral port; boundPort() reports the actual one either way.
  Status listen(std::uint16_t Port, int Backlog = 64);

  bool isOpen() const { return Fd >= 0; }
  std::uint16_t boundPort() const { return BoundPort; }
  void close();

  /// Waits up to TimeoutMs for a connection. Returns a connection, or
  /// NotFound on timeout (poll again — this is how shutdown flags get
  /// observed), or DataLoss on listener errors.
  Expected<LineConnection> acceptConnection(int TimeoutMs);

private:
  int Fd = -1;
  std::uint16_t BoundPort = 0;
};

/// Connects to 127.0.0.1:Port (the server is loopback-only by design).
Expected<LineConnection> connectLoopback(std::uint16_t Port);

} // namespace net
} // namespace thistle

#endif // THISTLE_SUPPORT_LINESOCKET_H
