//===- tests/WorkloadsTest.cpp - workloads/ tests (Table II) --------------===//

#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace thistle;

TEST(Workloads, LayerCountsMatchTableII) {
  EXPECT_EQ(resnet18Layers().size(), 12u);
  EXPECT_EQ(yolo9000Layers().size(), 11u);
  EXPECT_EQ(allPaperLayers().size(), 23u);
}

TEST(Workloads, ResnetSpotChecks) {
  std::vector<ConvLayer> L = resnet18Layers();
  // Layer 1: K=64, C=3, H=W=224, R=S=7, stride 2.
  EXPECT_EQ(L[0].K, 64);
  EXPECT_EQ(L[0].C, 3);
  EXPECT_EQ(L[0].Hin, 224);
  EXPECT_EQ(L[0].R, 7);
  EXPECT_EQ(L[0].StrideX, 2);
  // Layer 4: 128, 64, 56, 3, stride 2 (marked * in Table II).
  EXPECT_EQ(L[3].K, 128);
  EXPECT_EQ(L[3].R, 3);
  EXPECT_EQ(L[3].StrideX, 2);
  // Layer 12: 512, 512, 7, 3, stride 1.
  EXPECT_EQ(L[11].K, 512);
  EXPECT_EQ(L[11].C, 512);
  EXPECT_EQ(L[11].Hin, 7);
  EXPECT_EQ(L[11].StrideX, 1);
  // All batch size 1 and square.
  for (const ConvLayer &Layer : L) {
    EXPECT_EQ(Layer.N, 1);
    EXPECT_EQ(Layer.Hin, Layer.Win);
    EXPECT_EQ(Layer.R, Layer.S);
    EXPECT_EQ(Layer.StrideX, Layer.StrideY);
  }
}

TEST(Workloads, YoloSpotChecks) {
  std::vector<ConvLayer> L = yolo9000Layers();
  // Layer 1: K=32, C=3, H=W=544, R=S=3.
  EXPECT_EQ(L[0].K, 32);
  EXPECT_EQ(L[0].C, 3);
  EXPECT_EQ(L[0].Hin, 544);
  EXPECT_EQ(L[0].R, 3);
  // Layer 11: the 28269-channel classifier conv.
  EXPECT_EQ(L[10].K, 28269);
  EXPECT_EQ(L[10].C, 1024);
  EXPECT_EQ(L[10].Hin, 17);
  EXPECT_EQ(L[10].R, 1);
  // Yolo uses stride 1 everywhere (no * in Table II).
  for (const ConvLayer &Layer : L)
    EXPECT_EQ(Layer.StrideX, 1);
}

TEST(Workloads, LayerNamesAreUnique) {
  std::vector<ConvLayer> All = allPaperLayers();
  for (std::size_t I = 0; I < All.size(); ++I)
    for (std::size_t J = I + 1; J < All.size(); ++J)
      EXPECT_NE(All[I].Name, All[J].Name);
}

TEST(Workloads, ProblemsBuildAndHavePlausibleMacCounts) {
  for (const ConvLayer &L : allPaperLayers()) {
    Problem P = makeConvProblem(L);
    EXPECT_EQ(P.numOps(), L.numMacs()) << L.Name;
    EXPECT_GT(P.numOps(), 1000000) << L.Name; // All layers are nontrivial.
  }
}

TEST(Workloads, EyerissBaseline) {
  ArchConfig A = eyerissArch();
  EXPECT_EQ(A.NumPEs, 168);
  EXPECT_EQ(A.RegWordsPerPE, 512);
  EXPECT_EQ(A.SramWords, 65536);
  EXPECT_GT(eyerissAreaUm2(TechParams::cgo45nm()), 0.0);
}
