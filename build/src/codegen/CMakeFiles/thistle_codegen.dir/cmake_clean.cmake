file(REMOVE_RECURSE
  "CMakeFiles/thistle_codegen.dir/TiledNest.cpp.o"
  "CMakeFiles/thistle_codegen.dir/TiledNest.cpp.o.d"
  "libthistle_codegen.a"
  "libthistle_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thistle_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
