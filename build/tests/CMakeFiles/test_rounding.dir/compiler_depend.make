# Empty compiler generated dependencies file for test_rounding.
# This may be replaced when dependencies are built.
