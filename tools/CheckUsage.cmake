# Asserts a tool's --help text documents every user-facing contract:
# every flag the parser accepts (scraped from the tool source, so a new
# flag cannot land undocumented), the exit codes, and the doc pointers.
# Invoked by ctest as:
#   cmake -DTOOL=<thistle-opt> -DSOURCE=<thistle-opt.cpp> [-DMODE=serve]
#         -P CheckUsage.cmake
# The default mode audits thistle-opt (docs/THISTLE_OPT.md mirrors its
# usage text); MODE=serve audits the thistle-serve daemon against
# docs/SERVING.md instead.

if(MODE STREQUAL "serve")
  # Known-important flags, pinned explicitly so a parser-scrape
  # regression cannot silently weaken the audit.
  set(PINNED
      --port --port-file --max-clients --threads
      --cache-dir --cache-capacity --snapshot-every --trace-json)
  set(EXIT_PAIRS "0  clean shutdown" "2  invalid arguments")
  set(DOC_POINTER "docs/SERVING.md")
else()
  set(PINNED
      --layer --resnet --yolo --pipeline --network
      --mode --objective --candidates --threads --deadline-ms --hierarchy
      --evaluator
      --pes --regs --sram-words --area-budget
      --export-timeloop --metrics --profile --trace-json)
  set(EXIT_PAIRS
      "0  success" "1  partial/degraded" "2  invalid input"
      "3  no feasible design")
  set(DOC_POINTER "docs/OBSERVABILITY.md")
endif()

execute_process(
  COMMAND ${TOOL} --help
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE CODE)
if(NOT CODE EQUAL 0)
  message(FATAL_ERROR "--help: expected exit code 0, got '${CODE}'\n${ERR}")
endif()

foreach(FLAG ${PINNED})
  if(NOT OUT MATCHES "${FLAG}")
    message(FATAL_ERROR "--help: flag ${FLAG} undocumented\n${OUT}")
  endif()
endforeach()

# Every flag the parser compares against (the `Arg == "--x"` chain in
# the tool source) must appear in the usage table.
if(SOURCE)
  file(READ ${SOURCE} SRC)
  string(REGEX MATCHALL "Arg == \"(--[a-z-]+)\"" PARSED "${SRC}")
  foreach(MATCH ${PARSED})
    string(REGEX REPLACE "Arg == \"(--[a-z-]+)\"" "\\1" FLAG "${MATCH}")
    if(NOT OUT MATCHES "${FLAG}")
      message(FATAL_ERROR
        "--help: parsed flag ${FLAG} missing from usage\n${OUT}")
    endif()
  endforeach()
endif()

if(NOT OUT MATCHES "exit codes:")
  message(FATAL_ERROR "--help: missing exit-code section\n${OUT}")
endif()
foreach(PAIR ${EXIT_PAIRS})
  if(NOT OUT MATCHES "${PAIR}")
    message(FATAL_ERROR "--help: missing exit code entry '${PAIR}'\n${OUT}")
  endif()
endforeach()

if(NOT OUT MATCHES "${DOC_POINTER}")
  message(FATAL_ERROR "--help: missing doc pointer ${DOC_POINTER}\n${OUT}")
endif()

# An unknown option must print the same usage text and exit 2.
execute_process(
  COMMAND ${TOOL} --no-such-flag
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE CODE)
if(NOT CODE EQUAL 2)
  message(FATAL_ERROR
    "unknown option: expected exit code 2, got '${CODE}'")
endif()
if(NOT ERR MATCHES "unknown option")
  message(FATAL_ERROR "unknown option: missing diagnostic\n${ERR}")
endif()
