//===- nestmodel/MaestroModel.h - Data-centric cost backend -----*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A MAESTRO-style data-centric evaluator backend: instead of walking the
/// loop nest inner-to-outer and multiplying trip counts as Algorithm 1
/// does (the "nest" backend), it derives each tensor's traffic across
/// each boundary from the tensor's reuse opportunities in the tiling:
///
///  - *stationary reuse*: level iterators inner to the tensor's streaming
///    iterator are irrelevant to it, so the resident tile is reused
///    across their whole trip product — the level's total trip count is
///    divided by that reuse instead of summing over the surviving loops;
///  - *streaming (halo) reuse*: along the streaming iterator, consecutive
///    tiles overlap; only the non-overlapping new words are delivered
///    (the delivered volume of a sequence is trips * box minus the
///    re-used overlaps);
///  - *multicast reuse*: at the spatial fan-out boundary, PEs whose
///    coordinates differ only in iterators the tensor does not use
///    receive the same data once — the full grid traffic is divided by
///    that multicast factor (paper Eq. 2).
///
/// The two formulations are algebraically equal on every exact-count
/// field, so "maestro" must match "nest" integer for integer; any
/// disagreement surfaced by CrossCheckEvaluator is a model bug in one of
/// them. docs/EVALUATOR.md derives the equivalence.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_NESTMODEL_MAESTROMODEL_H
#define THISTLE_NESTMODEL_MAESTROMODEL_H

#include "nestmodel/CostEvaluator.h"

namespace thistle {

/// The data-centric backend ("maestro" in the registry).
class MaestroCostEvaluator : public CostEvaluator {
public:
  const char *name() const override { return "maestro"; }
  MultiProfile profile(const Problem &Prob, const Hierarchy &H,
                       const MultiMapping &Map) const override;
};

/// The process-wide maestro backend instance.
const CostEvaluator &maestroCostEvaluator();

} // namespace thistle

#endif // THISTLE_NESTMODEL_MAESTROMODEL_H
