file(REMOVE_RECURSE
  "libthistle_sim.a"
)
