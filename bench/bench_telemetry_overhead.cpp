//===- bench/bench_telemetry_overhead.cpp - Observability cost ------------===//
//
// Measures the wall-clock cost of the telemetry layer on the pair-sweep
// hot path at each collection level (off / metrics / trace), checks the
// docs/OBSERVABILITY.md guarantee that --metrics stays under 2% overhead,
// verifies the optimization result is bit-identical at every level, and
// writes the numbers to BENCH_telemetry.json.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cstdio>

using namespace thistle;
using namespace thistle::bench;

namespace {

struct LevelTiming {
  double Seconds = 0.0;
  double EnergyPj = 0.0;
  unsigned NewtonIterations = 0;
};

/// Best-of-N wall time of one full pair sweep at the given level. The
/// minimum filters scheduler noise; the workload is deterministic.
LevelTiming measure(const Problem &P, telemetry::Level Level,
                    int Repetitions) {
  TechParams Tech = TechParams::cgo45nm();
  ArchConfig Arch = eyerissArch();
  ThistleOptions Opts =
      thistleOptions(DesignMode::DataflowOnly, SearchObjective::Energy);

  LevelTiming Best;
  for (int Rep = 0; Rep < Repetitions; ++Rep) {
    telemetry::reset();
    telemetry::setLevel(Level);
    WallTimer T;
    ThistleResult R = optimizeLayer(P, Arch, Tech, Opts);
    double Seconds = T.seconds();
    if (Rep == 0 || Seconds < Best.Seconds)
      Best.Seconds = Seconds;
    Best.EnergyPj = R.Eval.EnergyPj;
    Best.NewtonIterations = R.Stats.NewtonIterations;
  }
  telemetry::setLevel(telemetry::Level::Off);
  return Best;
}

double overheadPercent(double Base, double Measured) {
  return Base > 0.0 ? (Measured - Base) / Base * 100.0 : 0.0;
}

void writeJson(const char *Path, const LevelTiming &Off,
               const LevelTiming &Metrics, const LevelTiming &Trace) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path);
    return;
  }
  std::fprintf(F,
               "{\n"
               "  \"bench\": \"telemetry_overhead\",\n"
               "  \"compiled_in\": %s,\n"
               "  \"seconds_off\": %.4f,\n"
               "  \"seconds_metrics\": %.4f,\n"
               "  \"seconds_trace\": %.4f,\n"
               "  \"overhead_metrics_pct\": %.2f,\n"
               "  \"overhead_trace_pct\": %.2f\n"
               "}\n",
               telemetry::compiledIn() ? "true" : "false", Off.Seconds,
               Metrics.Seconds, Trace.Seconds,
               overheadPercent(Off.Seconds, Metrics.Seconds),
               overheadPercent(Off.Seconds, Trace.Seconds));
  std::fclose(F);
  std::printf("wrote %s\n", Path);
}

} // namespace

int main() {
  printHeader("telemetry overhead",
              "Pair-sweep wall time with collection off vs. --metrics "
              "(counters) vs. --trace-json (full spans); the optimizer "
              "result must be bit-identical at every level and the "
              "metrics overhead under 2%.");

  Problem P = makeConvProblem(resnet18Layers()[4]);
  const int Reps = 3;
  LevelTiming Off = measure(P, telemetry::Level::Off, Reps);
  LevelTiming Metrics = measure(P, telemetry::Level::Metrics, Reps);
  LevelTiming Trace = measure(P, telemetry::Level::Trace, Reps);

  std::printf("%-8s %10s %10s\n", "level", "seconds", "overhead");
  std::printf("%-8s %10.4f %9s\n", "off", Off.Seconds, "-");
  std::printf("%-8s %10.4f %+9.2f%%\n", "metrics", Metrics.Seconds,
              overheadPercent(Off.Seconds, Metrics.Seconds));
  std::printf("%-8s %10.4f %+9.2f%%\n", "trace", Trace.Seconds,
              overheadPercent(Off.Seconds, Trace.Seconds));

  if (Off.EnergyPj != Metrics.EnergyPj || Off.EnergyPj != Trace.EnergyPj ||
      Off.NewtonIterations != Metrics.NewtonIterations ||
      Off.NewtonIterations != Trace.NewtonIterations)
    std::printf("WARNING: results differ across telemetry levels!\n");
  if (telemetry::compiledIn() &&
      overheadPercent(Off.Seconds, Metrics.Seconds) > 2.0)
    std::printf("WARNING: metrics overhead exceeds the 2%% budget\n");

  writeJson("BENCH_telemetry.json", Off, Metrics, Trace);
  return 0;
}
